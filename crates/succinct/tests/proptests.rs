//! Property-based tests pitting the succinct structures against naive
//! references on arbitrary inputs, including serialization round-trips
//! through both the owned and the zero-copy view load paths.

use std::collections::BTreeSet;

use grafite_succinct::io::{ReadSource, WordCursor, WordWriter};
use grafite_succinct::{
    BitVec, BitVecView, EliasFano, EliasFanoView, GolombRiceSeq, GolombRiceSeqView, IntVec,
    IntVecView, RsBitVec, RsBitVecView,
};
use proptest::prelude::*;

/// Serializes a structure through its `write_to` and returns both byte and
/// word images of the stream.
fn serialize(
    write: impl FnOnce(&mut WordWriter<'_>) -> std::io::Result<usize>,
) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = Vec::new();
    let mut w = WordWriter::new(&mut bytes);
    let words_written = write(&mut w).unwrap();
    assert_eq!(
        words_written * 8,
        bytes.len(),
        "write_to word count drifted"
    );
    let words = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    (bytes, words)
}

// The frozen v1 `RsBitVec` reference encoder is shared with the unit
// tests: one copy, maintained in the library as doc(hidden) test support.
use grafite_succinct::rs_bitvec::encode_v1_for_tests as encode_rsbitvec_v1;

/// Hand-encodes the **format-v1** Elias–Fano stream: the five scalar head
/// words and the low array are layout-identical across versions; only the
/// embedded high `RsBitVec` uses the legacy directory encoding.
fn encode_elias_fano_v1(values: &[u64], universe: u64) -> Vec<u64> {
    let n = values.len();
    let (low_bits, high_pattern, first, last) = if n == 0 {
        (0usize, vec![false], 0u64, 0u64)
    } else {
        let low_bits = if universe > n as u64 {
            (universe / n as u64).ilog2() as usize
        } else {
            0
        };
        let hi_max = (universe - 1) >> low_bits;
        let mut high = vec![false; hi_max as usize + n + 1];
        for (i, &v) in values.iter().enumerate() {
            high[(v >> low_bits) as usize + i] = true;
        }
        (low_bits, high, values[0], values[n - 1])
    };
    let mask = if low_bits == 0 {
        0
    } else {
        (1u64 << low_bits) - 1
    };
    let lows: Vec<u64> = values.iter().map(|&v| v & mask).collect();
    // The IntVec layout is version-invariant: serialize it with the library.
    let iv = IntVec::from_slice(low_bits, &lows);
    let (_, iv_words) = serialize(|w| iv.write_to(w));
    let mut out = vec![n as u64, universe, low_bits as u64, first, last];
    out.extend_from_slice(&iv_words);
    out.extend_from_slice(&encode_rsbitvec_v1(&high_pattern));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rsbitvec_rank_select_match_naive(pattern in prop::collection::vec(any::<bool>(), 1..2048)) {
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let mut ones_seen = 0usize;
        let mut zeros_seen = 0usize;
        for (i, &b) in pattern.iter().enumerate() {
            prop_assert_eq!(rs.rank1(i), ones_seen);
            prop_assert_eq!(rs.rank0(i), zeros_seen);
            if b {
                prop_assert_eq!(rs.select1(ones_seen), i);
                ones_seen += 1;
            } else {
                prop_assert_eq!(rs.select0(zeros_seen), i);
                zeros_seen += 1;
            }
        }
        prop_assert_eq!(rs.rank1(pattern.len()), ones_seen);
    }

    #[test]
    fn elias_fano_matches_btreeset(
        mut values in prop::collection::vec(0u64..100_000, 0..600),
        probes in prop::collection::vec(0u64..100_000, 1..200),
        universe_slack in 1u64..1000,
    ) {
        values.sort_unstable();
        let universe = values.last().copied().unwrap_or(0) + universe_slack;
        let ef = EliasFano::new(&values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        for &y in &probes {
            let y = y.min(universe - 1);
            prop_assert_eq!(ef.predecessor(y), set.range(..=y).next_back().copied());
            prop_assert_eq!(ef.successor(y), set.range(y..).next().copied());
            prop_assert_eq!(ef.rank(y), values.iter().filter(|&&v| v < y).count());
        }
        let back: Vec<u64> = ef.iter().collect();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn elias_fano_range_queries(
        mut values in prop::collection::vec(0u64..50_000, 1..300),
        ranges in prop::collection::vec((0u64..50_000, 0u64..100), 1..100),
    ) {
        values.sort_unstable();
        values.dedup();
        let universe = 50_200u64;
        let ef = EliasFano::new(&values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        for &(a, width) in &ranges {
            let b = (a + width).min(universe - 1);
            let expect = set.range(a..=b).next().is_some();
            prop_assert_eq!(ef.any_in_range(a, b), expect, "range [{}, {}]", a, b);
        }
    }

    #[test]
    fn golomb_rice_matches_btreeset(
        mut values in prop::collection::vec(0u64..1_000_000, 0..500),
        probes in prop::collection::vec(0u64..1_000_000, 1..100),
        param in 0usize..12,
        block_size in 1usize..200,
    ) {
        values.sort_unstable();
        let seq = GolombRiceSeq::with_params(&values, param, block_size);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        let decoded: Vec<u64> = seq.iter().collect();
        prop_assert_eq!(&decoded, &values);
        for &y in &probes {
            prop_assert_eq!(seq.successor(y), set.range(y..).next().copied());
        }
    }

    #[test]
    fn intvec_roundtrip(values in prop::collection::vec(any::<u64>(), 0..300), width in 0usize..=64) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let iv = IntVec::from_slice(width, &masked);
        let back: Vec<u64> = iv.iter().collect();
        prop_assert_eq!(back, masked);
    }

    #[test]
    fn bitvec_field_roundtrip(ops in prop::collection::vec((any::<u64>(), 0usize..=64), 1..100)) {
        let mut bv = BitVec::new();
        let mut expected = Vec::new();
        for &(value, width) in &ops {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let v = value & mask;
            bv.push_bits(v, width);
            expected.push((v, width));
        }
        let mut pos = 0usize;
        for &(v, width) in &expected {
            prop_assert_eq!(bv.get_bits(pos, width), v);
            pos += width;
        }
        prop_assert_eq!(bv.len(), pos);
    }

    #[test]
    fn bitvec_serialization_roundtrip(pattern in prop::collection::vec(any::<bool>(), 0..2048)) {
        let bv: BitVec = pattern.iter().copied().collect();
        let (bytes, words) = serialize(|w| bv.write_to(w));
        let owned = BitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = BitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == bv);
        prop_assert!(view == bv);
        for (i, &b) in pattern.iter().enumerate() {
            prop_assert_eq!(view.get(i), b);
        }
    }

    #[test]
    fn rsbitvec_serialization_roundtrip(pattern in prop::collection::vec(any::<bool>(), 1..2048)) {
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let (bytes, words) = serialize(|w| rs.write_to(w));
        let owned = RsBitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = RsBitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert_eq!(owned.count_ones(), rs.count_ones());
        prop_assert_eq!(view.count_ones(), rs.count_ones());
        for pos in 0..=pattern.len() {
            prop_assert_eq!(owned.rank1(pos), rs.rank1(pos));
            prop_assert_eq!(view.rank1(pos), rs.rank1(pos));
        }
        for k in 0..rs.count_ones() {
            prop_assert_eq!(view.select1(k), rs.select1(k));
        }
        for k in 0..rs.count_zeros() {
            prop_assert_eq!(view.select0(k), rs.select0(k));
        }
    }

    #[test]
    fn intvec_serialization_roundtrip(
        values in prop::collection::vec(any::<u64>(), 0..300),
        width in 0usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let iv = IntVec::from_slice(width, &masked);
        let (bytes, words) = serialize(|w| iv.write_to(w));
        let owned = IntVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = IntVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == iv);
        prop_assert!(view == iv);
        let back: Vec<u64> = view.iter().collect();
        prop_assert_eq!(back, masked);
    }

    #[test]
    fn elias_fano_serialization_roundtrip(
        mut values in prop::collection::vec(0u64..100_000, 0..600),
        probes in prop::collection::vec(0u64..100_000, 1..100),
        universe_slack in 1u64..1000,
    ) {
        values.sort_unstable();
        let universe = values.last().copied().unwrap_or(0) + universe_slack;
        let ef = EliasFano::new(&values, universe);
        let (bytes, words) = serialize(|w| ef.write_to(w));
        let owned = EliasFano::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = EliasFanoView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == ef);
        prop_assert!(view == ef);
        for &y in &probes {
            let y = y.min(universe - 1);
            prop_assert_eq!(owned.predecessor(y), ef.predecessor(y));
            prop_assert_eq!(view.predecessor(y), ef.predecessor(y));
            prop_assert_eq!(view.successor(y), ef.successor(y));
            prop_assert_eq!(view.rank(y), ef.rank(y));
        }
    }

    /// Adversarial-density coverage for the position-sampled select
    /// directories: patterns are built from runs (all-zero stretches, dense
    /// bursts) aligned to multiples that hit the 512-bit block and sample
    /// boundaries, then checked bit-for-bit against the naive reference.
    #[test]
    fn position_sampled_select_matches_naive_on_runs(
        runs in prop::collection::vec((any::<bool>(), 1usize..700), 1..24),
        align_idx in 0usize..5,
    ) {
        let align = [1usize, 64, 511, 512, 513][align_idx];
        let mut pattern = Vec::new();
        for &(bit, len) in &runs {
            pattern.extend(std::iter::repeat(bit).take(len * align % 2048 + len));
        }
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let mut ones_seen = 0usize;
        let mut zeros_seen = 0usize;
        for (i, &b) in pattern.iter().enumerate() {
            if b {
                prop_assert_eq!(rs.select1(ones_seen), i, "select1({})", ones_seen);
                ones_seen += 1;
            } else {
                prop_assert_eq!(rs.select0(zeros_seen), i, "select0({})", zeros_seen);
                zeros_seen += 1;
            }
            prop_assert_eq!(rs.rank1(i + 1), ones_seen);
        }
    }

    /// The fused single-probe `predecessor` (and the cursor over sorted
    /// probes) answer exactly like the retained two-probe baseline and the
    /// BTreeSet reference, across clustered/sparse mixes.
    #[test]
    fn fused_predecessor_equals_two_probe_and_reference(
        mut clusters in prop::collection::vec((0u64..5_000_000, 1usize..40), 1..30),
        mut probes in prop::collection::vec(0u64..5_100_000, 1..200),
        stride in 1u64..50,
    ) {
        let mut values = Vec::new();
        clusters.sort_unstable();
        for &(base, count) in &clusters {
            for i in 0..count as u64 {
                values.push(base + i * stride);
            }
        }
        values.sort_unstable();
        let universe = values.last().unwrap() + 1 + stride;
        let ef = EliasFano::new(&values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        probes.sort_unstable();
        let mut cursor = ef.cursor();
        for &y in &probes {
            let y = y.min(universe - 1);
            let expect = set.range(..=y).next_back().copied();
            prop_assert_eq!(ef.predecessor(y), expect, "fused pred({})", y);
            prop_assert_eq!(ef.predecessor_two_probe(y), expect, "two-probe pred({})", y);
            prop_assert_eq!(cursor.predecessor(y), expect, "cursor pred({})", y);
            prop_assert_eq!(ef.successor(y), set.range(y..).next().copied(), "succ({})", y);
        }
    }

    /// Format-v1 compatibility at the stream level: a hand-encoded v1
    /// `RsBitVec` stream (legacy block-index hints) loads through
    /// `read_from_v1` and answers identically to a freshly built structure,
    /// and re-serializes as the v2 image.
    #[test]
    fn v1_rsbitvec_stream_loads_and_answers(pattern in prop::collection::vec(any::<bool>(), 1..4096)) {
        let stream = encode_rsbitvec_v1(&pattern);
        let bytes: Vec<u8> = stream.iter().flat_map(|w| w.to_le_bytes()).collect();
        let legacy = RsBitVec::read_from_v1(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let fresh = RsBitVec::new(pattern.iter().copied().collect());
        prop_assert_eq!(legacy.count_ones(), fresh.count_ones());
        for pos in 0..=pattern.len() {
            prop_assert_eq!(legacy.rank1(pos), fresh.rank1(pos));
        }
        for k in 0..fresh.count_ones() {
            prop_assert_eq!(legacy.select1(k), fresh.select1(k));
        }
        for k in 0..fresh.count_zeros() {
            prop_assert_eq!(legacy.select0(k), fresh.select0(k));
        }
        let (_, legacy_words) = serialize(|w| legacy.write_to(w));
        let (_, fresh_words) = serialize(|w| fresh.write_to(w));
        prop_assert_eq!(legacy_words, fresh_words, "re-serialization must be the v2 image");
    }

    /// Same at the Elias–Fano level: a v1 stream (v2 scalar head + low
    /// array + v1 high bit vector) loads through `read_from_v1` and answers
    /// the full operation set identically to a fresh encode.
    #[test]
    fn v1_elias_fano_stream_loads_and_answers(
        mut values in prop::collection::vec(0u64..200_000, 0..500),
        probes in prop::collection::vec(0u64..200_000, 1..100),
        universe_slack in 1u64..1000,
    ) {
        values.sort_unstable();
        let universe = values.last().copied().unwrap_or(0) + universe_slack;
        let fresh = EliasFano::new(&values, universe);
        let stream = encode_elias_fano_v1(&values, universe);
        let bytes: Vec<u8> = stream.iter().flat_map(|w| w.to_le_bytes()).collect();
        let legacy = EliasFano::read_from_v1(&mut ReadSource::new(bytes.as_slice())).unwrap();
        prop_assert!(legacy == fresh);
        for &y in &probes {
            let y = y.min(universe - 1);
            prop_assert_eq!(legacy.predecessor(y), fresh.predecessor(y));
            prop_assert_eq!(legacy.successor(y), fresh.successor(y));
            prop_assert_eq!(legacy.rank(y), fresh.rank(y));
        }
    }

    #[test]
    fn golomb_serialization_roundtrip(
        mut values in prop::collection::vec(0u64..1_000_000, 0..500),
        probes in prop::collection::vec(0u64..1_000_000, 1..100),
        param in 0usize..12,
        block_size in 1usize..200,
    ) {
        values.sort_unstable();
        let seq = GolombRiceSeq::with_params(&values, param, block_size);
        let (bytes, words) = serialize(|w| seq.write_to(w));
        let owned = GolombRiceSeq::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = GolombRiceSeqView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == seq);
        prop_assert!(view == seq);
        let decoded: Vec<u64> = view.iter().collect();
        prop_assert_eq!(&decoded, &values);
        for &y in &probes {
            prop_assert_eq!(owned.successor(y), seq.successor(y));
            prop_assert_eq!(view.successor(y), seq.successor(y));
        }
    }
}
