//! Property-based tests pitting the succinct structures against naive
//! references on arbitrary inputs, including serialization round-trips
//! through both the owned and the zero-copy view load paths.

use std::collections::BTreeSet;

use grafite_succinct::io::{ReadSource, WordCursor, WordWriter};
use grafite_succinct::{
    BitVec, BitVecView, EliasFano, EliasFanoView, GolombRiceSeq, GolombRiceSeqView, IntVec,
    IntVecView, RsBitVec, RsBitVecView,
};
use proptest::prelude::*;

/// Serializes a structure through its `write_to` and returns both byte and
/// word images of the stream.
fn serialize(
    write: impl FnOnce(&mut WordWriter<'_>) -> std::io::Result<usize>,
) -> (Vec<u8>, Vec<u64>) {
    let mut bytes = Vec::new();
    let mut w = WordWriter::new(&mut bytes);
    let words_written = write(&mut w).unwrap();
    assert_eq!(
        words_written * 8,
        bytes.len(),
        "write_to word count drifted"
    );
    let words = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    (bytes, words)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rsbitvec_rank_select_match_naive(pattern in prop::collection::vec(any::<bool>(), 1..2048)) {
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let mut ones_seen = 0usize;
        let mut zeros_seen = 0usize;
        for (i, &b) in pattern.iter().enumerate() {
            prop_assert_eq!(rs.rank1(i), ones_seen);
            prop_assert_eq!(rs.rank0(i), zeros_seen);
            if b {
                prop_assert_eq!(rs.select1(ones_seen), i);
                ones_seen += 1;
            } else {
                prop_assert_eq!(rs.select0(zeros_seen), i);
                zeros_seen += 1;
            }
        }
        prop_assert_eq!(rs.rank1(pattern.len()), ones_seen);
    }

    #[test]
    fn elias_fano_matches_btreeset(
        mut values in prop::collection::vec(0u64..100_000, 0..600),
        probes in prop::collection::vec(0u64..100_000, 1..200),
        universe_slack in 1u64..1000,
    ) {
        values.sort_unstable();
        let universe = values.last().copied().unwrap_or(0) + universe_slack;
        let ef = EliasFano::new(&values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        for &y in &probes {
            let y = y.min(universe - 1);
            prop_assert_eq!(ef.predecessor(y), set.range(..=y).next_back().copied());
            prop_assert_eq!(ef.successor(y), set.range(y..).next().copied());
            prop_assert_eq!(ef.rank(y), values.iter().filter(|&&v| v < y).count());
        }
        let back: Vec<u64> = ef.iter().collect();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn elias_fano_range_queries(
        mut values in prop::collection::vec(0u64..50_000, 1..300),
        ranges in prop::collection::vec((0u64..50_000, 0u64..100), 1..100),
    ) {
        values.sort_unstable();
        values.dedup();
        let universe = 50_200u64;
        let ef = EliasFano::new(&values, universe);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        for &(a, width) in &ranges {
            let b = (a + width).min(universe - 1);
            let expect = set.range(a..=b).next().is_some();
            prop_assert_eq!(ef.any_in_range(a, b), expect, "range [{}, {}]", a, b);
        }
    }

    #[test]
    fn golomb_rice_matches_btreeset(
        mut values in prop::collection::vec(0u64..1_000_000, 0..500),
        probes in prop::collection::vec(0u64..1_000_000, 1..100),
        param in 0usize..12,
        block_size in 1usize..200,
    ) {
        values.sort_unstable();
        let seq = GolombRiceSeq::with_params(&values, param, block_size);
        let set: BTreeSet<u64> = values.iter().copied().collect();
        let decoded: Vec<u64> = seq.iter().collect();
        prop_assert_eq!(&decoded, &values);
        for &y in &probes {
            prop_assert_eq!(seq.successor(y), set.range(y..).next().copied());
        }
    }

    #[test]
    fn intvec_roundtrip(values in prop::collection::vec(any::<u64>(), 0..300), width in 0usize..=64) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let iv = IntVec::from_slice(width, &masked);
        let back: Vec<u64> = iv.iter().collect();
        prop_assert_eq!(back, masked);
    }

    #[test]
    fn bitvec_field_roundtrip(ops in prop::collection::vec((any::<u64>(), 0usize..=64), 1..100)) {
        let mut bv = BitVec::new();
        let mut expected = Vec::new();
        for &(value, width) in &ops {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let v = value & mask;
            bv.push_bits(v, width);
            expected.push((v, width));
        }
        let mut pos = 0usize;
        for &(v, width) in &expected {
            prop_assert_eq!(bv.get_bits(pos, width), v);
            pos += width;
        }
        prop_assert_eq!(bv.len(), pos);
    }

    #[test]
    fn bitvec_serialization_roundtrip(pattern in prop::collection::vec(any::<bool>(), 0..2048)) {
        let bv: BitVec = pattern.iter().copied().collect();
        let (bytes, words) = serialize(|w| bv.write_to(w));
        let owned = BitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = BitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == bv);
        prop_assert!(view == bv);
        for (i, &b) in pattern.iter().enumerate() {
            prop_assert_eq!(view.get(i), b);
        }
    }

    #[test]
    fn rsbitvec_serialization_roundtrip(pattern in prop::collection::vec(any::<bool>(), 1..2048)) {
        let rs = RsBitVec::new(pattern.iter().copied().collect());
        let (bytes, words) = serialize(|w| rs.write_to(w));
        let owned = RsBitVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = RsBitVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert_eq!(owned.count_ones(), rs.count_ones());
        prop_assert_eq!(view.count_ones(), rs.count_ones());
        for pos in 0..=pattern.len() {
            prop_assert_eq!(owned.rank1(pos), rs.rank1(pos));
            prop_assert_eq!(view.rank1(pos), rs.rank1(pos));
        }
        for k in 0..rs.count_ones() {
            prop_assert_eq!(view.select1(k), rs.select1(k));
        }
        for k in 0..rs.count_zeros() {
            prop_assert_eq!(view.select0(k), rs.select0(k));
        }
    }

    #[test]
    fn intvec_serialization_roundtrip(
        values in prop::collection::vec(any::<u64>(), 0..300),
        width in 0usize..=64,
    ) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let masked: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let iv = IntVec::from_slice(width, &masked);
        let (bytes, words) = serialize(|w| iv.write_to(w));
        let owned = IntVec::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = IntVecView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == iv);
        prop_assert!(view == iv);
        let back: Vec<u64> = view.iter().collect();
        prop_assert_eq!(back, masked);
    }

    #[test]
    fn elias_fano_serialization_roundtrip(
        mut values in prop::collection::vec(0u64..100_000, 0..600),
        probes in prop::collection::vec(0u64..100_000, 1..100),
        universe_slack in 1u64..1000,
    ) {
        values.sort_unstable();
        let universe = values.last().copied().unwrap_or(0) + universe_slack;
        let ef = EliasFano::new(&values, universe);
        let (bytes, words) = serialize(|w| ef.write_to(w));
        let owned = EliasFano::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = EliasFanoView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == ef);
        prop_assert!(view == ef);
        for &y in &probes {
            let y = y.min(universe - 1);
            prop_assert_eq!(owned.predecessor(y), ef.predecessor(y));
            prop_assert_eq!(view.predecessor(y), ef.predecessor(y));
            prop_assert_eq!(view.successor(y), ef.successor(y));
            prop_assert_eq!(view.rank(y), ef.rank(y));
        }
    }

    #[test]
    fn golomb_serialization_roundtrip(
        mut values in prop::collection::vec(0u64..1_000_000, 0..500),
        probes in prop::collection::vec(0u64..1_000_000, 1..100),
        param in 0usize..12,
        block_size in 1usize..200,
    ) {
        values.sort_unstable();
        let seq = GolombRiceSeq::with_params(&values, param, block_size);
        let (bytes, words) = serialize(|w| seq.write_to(w));
        let owned = GolombRiceSeq::read_from(&mut ReadSource::new(bytes.as_slice())).unwrap();
        let view = GolombRiceSeqView::read_from(&mut WordCursor::new(&words)).unwrap();
        prop_assert!(owned == seq);
        prop_assert!(view == seq);
        let decoded: Vec<u64> = view.iter().collect();
        prop_assert_eq!(&decoded, &values);
        for &y in &probes {
            prop_assert_eq!(owned.successor(y), seq.successor(y));
            prop_assert_eq!(view.successor(y), seq.successor(y));
        }
    }
}
