//! SIMD vs scalar kernel agreement: every dispatch level available on this
//! machine must answer **bit-identically** to the scalar reference on every
//! kernel, across adversarial bit densities — all-zero, all-one,
//! alternating, and runs straddling the 512-bit block boundary — plus
//! pseudo-random words at several densities. The `*_at` entry points pin
//! the level explicitly, so one test binary exercises the whole ladder
//! regardless of the process-global `GRAFITE_SIMD` setting.

use grafite_succinct::simd::{
    self, low_partition_at, next_nonzero_word_at, rank1_x8_at, select_in_word_at, SimdLevel,
};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The adversarial 8-word block patterns of the issue text, plus random
/// blocks at sparse/medium/dense densities.
fn adversarial_blocks() -> Vec<[u64; 8]> {
    let mut blocks = vec![
        [0u64; 8],                                        // all-zero
        [!0u64; 8],                                       // all-one
        [0x5555_5555_5555_5555u64; 8],                    // alternating 0101…
        [0xAAAA_AAAA_AAAA_AAAAu64; 8],                    // alternating 1010…
        [0, 0, 0, !0, !0, 0, 0, 0],                       // run in the middle
        [!0, 0, 0, 0, 0, 0, 0, !0],                       // runs at both edges
        [1, 1 << 63, 1, 1 << 63, 1, 1 << 63, 1, 1 << 63], // word-boundary bits
    ];
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for density_shift in [0, 1, 3, 6] {
        for _ in 0..8 {
            let mut b = [0u64; 8];
            for w in &mut b {
                // AND-ing k random words thins density to ~2^-k.
                let mut v = xorshift(&mut state);
                for _ in 0..density_shift {
                    v &= xorshift(&mut state);
                }
                *w = v;
            }
            blocks.push(b);
        }
    }
    blocks
}

#[test]
fn levels_ladder_is_sane() {
    let levels = simd::available_levels();
    assert!(levels.contains(&SimdLevel::Scalar));
    // The process-wide level must be one we can exercise.
    assert!(levels.contains(&simd::level()) || simd::level() == SimdLevel::Neon);
}

#[test]
fn rank1_x8_agrees_on_all_levels() {
    let levels = simd::available_levels();
    for block in adversarial_blocks() {
        // Full blocks at every split point, plus short tail blocks of every
        // word count (the last block of a bit vector).
        for words in (0..=8).map(|k| &block[..k]) {
            for upto in 0..=512usize {
                let want = rank1_x8_at(SimdLevel::Scalar, words, upto);
                for &level in &levels {
                    assert_eq!(
                        rank1_x8_at(level, words, upto),
                        want,
                        "rank1_x8 {level:?} len={} upto={upto} block={block:?}",
                        words.len()
                    );
                }
            }
        }
    }
}

#[test]
fn select_in_word_agrees_on_all_levels() {
    let levels = simd::available_levels();
    let mut words: Vec<u64> = vec![
        !0,
        1,
        1 << 63,
        0x5555_5555_5555_5555,
        0xAAAA_AAAA_AAAA_AAAA,
        0x8000_0000_0000_0001,
        0xFFFF_0000_0000_FFFF,
    ];
    let mut state = 42u64;
    words.extend((0..200).map(|_| xorshift(&mut state) | 1));
    for &w in &words {
        for k in 0..w.count_ones() {
            let want = select_in_word_at(SimdLevel::Scalar, w, k);
            for &level in &levels {
                assert_eq!(
                    select_in_word_at(level, w, k),
                    want,
                    "select_in_word {level:?} w={w:#x} k={k}"
                );
            }
        }
    }
}

#[test]
fn low_partition_agrees_on_all_levels() {
    let levels = simd::available_levels();
    let mut state = 7u64;
    // Width sweep including boundary-straddling widths (any width not
    // dividing 64 produces fields crossing word boundaries) and the
    // extremes 1 and 63.
    for width in [1usize, 2, 3, 5, 7, 11, 13, 21, 31, 33, 47, 63] {
        let mask = (1u64 << width) - 1;
        for &(n, style) in &[(1usize, 0u8), (3, 0), (17, 1), (64, 2), (200, 1), (200, 3)] {
            // Non-decreasing fields, as the EF low array within one bucket
            // need not be — use raw values (the kernel has no ordering
            // contract: it returns the first passing index).
            let vals: Vec<u64> = (0..n)
                .map(|i| match style {
                    0 => 0,                           // all-zero fields
                    1 => xorshift(&mut state) & mask, // random
                    2 => mask,                        // all-max fields
                    _ => {
                        if i % 2 == 0 {
                            0
                        } else {
                            mask
                        }
                    } // alternating
                })
                .collect();
            let mut words = vec![0u64; (n * width).div_ceil(64) + 1];
            for (i, &v) in vals.iter().enumerate() {
                let pos = i * width;
                words[pos / 64] |= v << (pos % 64);
                if pos % 64 + width > 64 {
                    words[pos / 64 + 1] |= v >> (64 - pos % 64);
                }
            }
            let probes: Vec<u64> = vec![
                0,
                1,
                mask / 2,
                mask.saturating_sub(1),
                mask,
                xorshift(&mut state) & mask,
            ];
            for &y in &probes {
                for include_equal in [false, true] {
                    for start in [0usize, n / 3, n.saturating_sub(2)] {
                        let want = low_partition_at(
                            SimdLevel::Scalar,
                            &words,
                            width,
                            start,
                            n,
                            y,
                            include_equal,
                        );
                        for &level in &levels {
                            assert_eq!(
                                low_partition_at(level, &words, width, start, n, y, include_equal),
                                want,
                                "low_partition {level:?} width={width} n={n} style={style} \
                                 y={y} eq={include_equal} start={start}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn next_nonzero_word_agrees_on_all_levels() {
    let levels = simd::available_levels();
    let mut cases: Vec<Vec<u64>> = vec![
        vec![],
        vec![0],
        vec![1],
        vec![0; 100],
        vec![!0; 100],
        (0..100).map(|i| u64::from(i % 7 == 3)).collect(),
    ];
    // A single set word at every offset of a 70-word buffer (crosses every
    // 4-word vector boundary alignment).
    for hit in 0..70 {
        let mut v = vec![0u64; 70];
        v[hit] = 1 << (hit % 64);
        cases.push(v);
    }
    for words in &cases {
        for from in 0..=words.len() + 2 {
            let want = next_nonzero_word_at(SimdLevel::Scalar, words, from);
            for &level in &levels {
                assert_eq!(
                    next_nonzero_word_at(level, words, from),
                    want,
                    "next_nonzero_word {level:?} len={} from={from}",
                    words.len()
                );
            }
        }
    }
}

/// End-to-end agreement: a full RsBitVec + EliasFano query battery runs
/// through the process-global dispatch (whatever this machine detects,
/// possibly capped by GRAFITE_SIMD) and must match naive references —
/// the same invariant the per-kernel tests check, but through the real
/// call sites, block directories, and cursor walks. Patterns straddle
/// 512-bit block boundaries by construction.
#[test]
fn structures_agree_end_to_end_under_dispatch() {
    use grafite_succinct::{BitVec, EliasFano, RsBitVec};

    let patterns: Vec<Vec<bool>> = vec![
        (0..4096).map(|_| false).collect(),
        (0..4096).map(|_| true).collect(),
        (0..4099).map(|i| i % 2 == 0).collect(),
        (0..4096)
            .map(|i| !(500..520).contains(&(i % 512)))
            .collect(),
        (0..8192).map(|i| (i / 512) % 2 == 0).collect(),
    ];
    for pattern in patterns {
        let ones = pattern.iter().filter(|&&b| b).count();
        let rs = RsBitVec::new(pattern.iter().copied().collect::<BitVec>());
        for pos in (0..=pattern.len()).step_by(13) {
            let want = pattern[..pos].iter().filter(|&&b| b).count();
            assert_eq!(rs.rank1(pos), want, "rank1({pos})");
        }
        for k in (0..ones).step_by(11) {
            let want = pattern
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .nth(k)
                .unwrap()
                .0;
            assert_eq!(rs.select1(k), want, "select1({k})");
        }
    }

    let mut state = 77u64;
    let mut values: Vec<u64> = (0..6000)
        .map(|_| xorshift(&mut state) % 3_000_000)
        .collect();
    values.sort_unstable();
    values.dedup();
    let ef = EliasFano::new(&values, 3_000_000);
    let mut probes: Vec<u64> = (0..4000)
        .map(|_| xorshift(&mut state) % 3_000_000)
        .collect();
    probes.sort_unstable();
    let mut cur = ef.cursor();
    let mut cur_bitwise = ef.cursor();
    for &y in &probes {
        let want = values.iter().copied().rfind(|&v| v <= y);
        assert_eq!(ef.predecessor(y), want, "pred({y})");
        assert_eq!(cur.predecessor(y), want, "cursor pred({y})");
        assert_eq!(
            cur_bitwise.predecessor_bitwise(y),
            want,
            "bitwise pred({y})"
        );
    }
}
