//! Key-set generators reproducing the gap structure of the paper's datasets.
//!
//! All generators return a **sorted, deduplicated** key vector — the input
//! contract of every filter builder in the workspace (builders also accept
//! unsorted input, but the harness keeps a sorted copy for emptiness checks
//! anyway).

use crate::rng::WorkloadRng;

/// The datasets of the paper's §6.1 (plus the §6.1 Fb case study and the
/// "other datasets" Normal check).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Keys chosen uniformly at random from `[0, 2^64)`.
    Uniform,
    /// Books-like: cumulative counts of a heavy-tailed (lognormal)
    /// popularity process — smooth but skewed gaps, like the SOSD `books`
    /// file of Amazon sale counts.
    Books,
    /// Osm-like: a mixture of Gaussian clusters around uniform centres —
    /// strong local clustering, like OpenStreetMap cell ids.
    Osm,
    /// Normal distribution with mean `2^63` and standard deviation
    /// `0.1 · 2^64` (the paper's §6.1 "other datasets" experiment).
    Normal,
    /// Fb-like: mean around `2^38` with 21 huge outliers (the paper's §6.1
    /// case study showing Grafite reaches FPR 0 at 12 bits/key).
    Fb,
}

impl Dataset {
    /// All datasets, in the order the paper's figures present them.
    pub const ALL: [Dataset; 5] = [
        Dataset::Uniform,
        Dataset::Books,
        Dataset::Osm,
        Dataset::Normal,
        Dataset::Fb,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Uniform => "Uniform",
            Dataset::Books => "Books",
            Dataset::Osm => "Osm",
            Dataset::Normal => "Normal",
            Dataset::Fb => "Fb",
        }
    }

    /// Parses a case-insensitive dataset name.
    pub fn parse(name: &str) -> Option<Dataset> {
        match name.to_ascii_lowercase().as_str() {
            "uniform" => Some(Dataset::Uniform),
            "books" => Some(Dataset::Books),
            "osm" => Some(Dataset::Osm),
            "normal" => Some(Dataset::Normal),
            "fb" => Some(Dataset::Fb),
            _ => None,
        }
    }
}

/// Generates `n` sorted deduplicated keys from `dataset` (the result can be
/// marginally shorter than `n` after deduplication; at the paper's densities
/// the loss is negligible and is reported by the harness).
pub fn generate(dataset: Dataset, n: usize, seed: u64) -> Vec<u64> {
    let mut rng = WorkloadRng::new(seed ^ 0x0DA7_A5E7 ^ dataset.name().len() as u64);
    let mut keys: Vec<u64> = match dataset {
        Dataset::Uniform => (0..n).map(|_| rng.next_u64()).collect(),
        Dataset::Books => books_like(n, &mut rng),
        Dataset::Osm => osm_like(n, &mut rng),
        Dataset::Normal => normal(n, &mut rng),
        Dataset::Fb => fb_like(n, &mut rng),
    };
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Cumulative sums of lognormal increments, scaled to span roughly half the
/// universe: the gap distribution is smooth but heavy-tailed, mimicking
/// cumulative sale counts.
fn books_like(n: usize, rng: &mut WorkloadRng) -> Vec<u64> {
    let sigma = 2.0;
    let gaps: Vec<f64> = (0..n).map(|_| (sigma * rng.gaussian()).exp()).collect();
    let total: f64 = gaps.iter().sum();
    let scale = (0.5 * u64::MAX as f64) / total;
    let mut cur = 0u64;
    gaps.iter()
        .map(|g| {
            let step = ((g * scale) as u64).max(1);
            cur = cur.saturating_add(step);
            cur
        })
        .collect()
}

/// Gaussian clusters around uniform centres: heavy local clustering, so that
/// "real workload" queries (left endpoints extracted from the data) behave
/// like correlated queries — the property that drives the paper's Osm rows.
fn osm_like(n: usize, rng: &mut WorkloadRng) -> Vec<u64> {
    let n_clusters = (n / 1000).max(1);
    let centers: Vec<u64> = (0..n_clusters).map(|_| rng.next_u64()).collect();
    let spread = 2f64.powi(34);
    (0..n)
        .map(|_| {
            let c = centers[rng.below(n_clusters as u64) as usize];
            let offset = rng.gaussian() * spread;
            if offset >= 0.0 {
                c.saturating_add(offset as u64)
            } else {
                c.saturating_sub((-offset) as u64)
            }
        })
        .collect()
}

/// The paper's Normal dataset: mean `2^63`, standard deviation `0.1 · 2^64`.
fn normal(n: usize, rng: &mut WorkloadRng) -> Vec<u64> {
    let mean = 2f64.powi(63);
    let sd = 0.1 * 2f64.powi(64);
    (0..n)
        .map(|_| {
            let v = mean + rng.gaussian() * sd;
            if v <= 0.0 {
                0
            } else if v >= u64::MAX as f64 {
                u64::MAX
            } else {
                v as u64
            }
        })
        .collect()
}

/// Fb-like: all keys but 21 land in a dense region with universe-to-key
/// ratio `u/n = 2^10` — the regime of the paper's §6.1 case study, where an
/// Elias–Fano encoding (log2(u/n) + 2 = 12 bits/key) is exact, and hence
/// Grafite at a 12-bits-per-key budget has a reduced universe covering the
/// dense region and a false positive rate of zero. 21 outliers spread up to
/// the top of the universe, as in the real Fb file.
fn fb_like(n: usize, rng: &mut WorkloadRng) -> Vec<u64> {
    let outliers = 21.min(n);
    let dense_span = (n as u64).saturating_mul(1 << 10).max(2);
    let mut keys: Vec<u64> = (0..n - outliers).map(|_| rng.below(dense_span)).collect();
    for _ in 0..outliers {
        keys.push(rng.range_inclusive(1u64 << 50, u64::MAX - 1));
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        for ds in Dataset::ALL {
            let a = generate(ds, 5000, 42);
            let b = generate(ds, 5000, 42);
            assert_eq!(a, b, "{} not deterministic", ds.name());
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "{} not sorted/dedup",
                ds.name()
            );
            assert!(a.len() > 4500, "{} lost too many keys to dedup", ds.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Dataset::Uniform, 1000, 1);
        let b = generate(Dataset::Uniform, 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn osm_is_clustered() {
        // Clustered data has much smaller median gap than uniform data.
        let n = 20_000;
        let uni = generate(Dataset::Uniform, n, 7);
        let osm = generate(Dataset::Osm, n, 7);
        let median_gap = |keys: &[u64]| {
            let mut gaps: Vec<u64> = keys.windows(2).map(|w| w[1] - w[0]).collect();
            gaps.sort_unstable();
            gaps[gaps.len() / 2]
        };
        assert!(
            median_gap(&osm) < median_gap(&uni) / 8,
            "osm median gap {} vs uniform {}",
            median_gap(&osm),
            median_gap(&uni)
        );
    }

    #[test]
    fn books_gaps_are_skewed() {
        let keys = generate(Dataset::Books, 20_000, 9);
        let gaps: Vec<u64> = keys.windows(2).map(|w| w[1] - w[0]).collect();
        let mut sorted = gaps.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = gaps.iter().map(|&g| g as f64).sum::<f64>() / gaps.len() as f64;
        assert!(
            mean > 4.0 * median,
            "books gaps not heavy-tailed: mean {mean} median {median}"
        );
    }

    #[test]
    fn fb_has_low_mass_plus_outliers() {
        let n = 10_000;
        let keys = generate(Dataset::Fb, n, 3);
        let above = keys.iter().filter(|&&k| k > 1u64 << 45).count();
        assert!((15..=21).contains(&above), "outlier count {above}");
        let dense_span = n as u64 * 1024;
        let below = keys.iter().filter(|&&k| k < dense_span).count();
        assert!(below > 9_900);
    }

    #[test]
    fn parse_roundtrip() {
        for ds in Dataset::ALL {
            assert_eq!(Dataset::parse(ds.name()), Some(ds));
            assert_eq!(Dataset::parse(&ds.name().to_uppercase()), Some(ds));
        }
        assert_eq!(Dataset::parse("nope"), None);
    }
}
