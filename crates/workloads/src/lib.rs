//! Datasets and query workloads of the Grafite paper's evaluation (§6.1).
//!
//! The paper evaluates on three 200M-key datasets — **Uniform** (synthetic),
//! **Books** (Amazon sales popularity) and **Osm** (OpenStreetMap cell ids) —
//! plus a **Normal** robustness check and the **Fb** case study. The real
//! datasets come from the SOSD benchmark suite and are not redistributable;
//! this crate synthesises statistically similar stand-ins (see
//! [`datasets`]) and transparently loads the real SOSD binaries when the
//! user drops them into a data directory (see [`sosd`]). DESIGN.md §3
//! documents why the substitution preserves the paper's comparisons.
//!
//! Query workloads follow §6.1 exactly: batches of emptiness queries
//! `[x, x + L − 1]` with point (`L = 2^0`), small (`L = 2^5`) and large
//! (`L = 2^10`) sizes; left endpoints drawn **uncorrelated** (uniform),
//! **correlated** with a degree `D` (`x ∈ [k, k + 2^{30(1−D)}]` for a random
//! key `k`), or **extracted from the dataset** (real workloads); emptiness is
//! enforced by discarding ranges that intersect the keys. A separate
//! generator produces the §6.5 *non-empty* queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod queries;
pub mod rng;
pub mod sosd;

pub use datasets::{generate, Dataset};
pub use queries::{
    correlated_queries, extract_real_queries, non_empty_queries, uncorrelated_queries, RangeQuery,
};
pub use rng::WorkloadRng;
