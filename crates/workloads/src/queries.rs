//! Query-workload generators following §6.1 of the paper.
//!
//! Every generator produces closed ranges `[x, x + L − 1]`. The paper's
//! emptiness-measuring workloads (everything except [`non_empty_queries`])
//! *enforce empty queries* "by discarding the query ranges that intersect
//! the dataset", so the measured positive rate is exactly the false-positive
//! rate.

use crate::rng::WorkloadRng;

/// A closed query range `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeQuery {
    /// Left endpoint (inclusive).
    pub lo: u64,
    /// Right endpoint (inclusive).
    pub hi: u64,
}

impl RangeQuery {
    /// The range size `hi − lo + 1` (the paper's ℓ).
    pub fn size(&self) -> u64 {
        self.hi - self.lo + 1
    }
}

/// Whether `[lo, hi]` intersects the sorted key set.
#[inline]
pub fn intersects(sorted_keys: &[u64], lo: u64, hi: u64) -> bool {
    let idx = sorted_keys.partition_point(|&k| k < lo);
    idx < sorted_keys.len() && sorted_keys[idx] <= hi
}

/// Caps the number of rejection-sampling attempts per emitted query; with
/// adversarially dense key sets some workloads cannot produce enough empty
/// ranges, and the generators return what they found rather than spin.
const MAX_ATTEMPT_FACTOR: usize = 200;

fn fill_empty_queries(
    sorted_keys: &[u64],
    count: usize,
    mut propose: impl FnMut() -> u64,
    range_size: u64,
) -> Vec<RangeQuery> {
    debug_assert!(range_size >= 1);
    let mut queries = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let budget = count.saturating_mul(MAX_ATTEMPT_FACTOR);
    while queries.len() < count && attempts < budget {
        attempts += 1;
        let lo = propose();
        let hi = match lo.checked_add(range_size - 1) {
            Some(hi) => hi,
            None => continue,
        };
        if intersects(sorted_keys, lo, hi) {
            continue;
        }
        queries.push(RangeQuery { lo, hi });
    }
    queries
}

/// Uncorrelated workload: left endpoints uniform over the universe,
/// intersecting ranges discarded.
pub fn uncorrelated_queries(
    sorted_keys: &[u64],
    count: usize,
    range_size: u64,
    seed: u64,
) -> Vec<RangeQuery> {
    let mut rng = WorkloadRng::new(seed ^ 0x5EED_0001);
    fill_empty_queries(sorted_keys, count, || rng.next_u64(), range_size)
}

/// Correlated workload with degree `D ∈ \[0, 1\]`: a key `k` is drawn
/// uniformly from the dataset and the left endpoint `x` uniformly from
/// `[k, k + M^{(1−D)}]` (§6.1; `D = 0` gives far offsets, `D = 1` puts `x`
/// right next to a key). Intersecting ranges are discarded, so higher `D`
/// means *empty* ranges hugging the keys — the adversarial regime of
/// Figures 1 and 3.
///
/// The paper fixes `M = 2^30` for its 200M-key datasets, i.e. `2^6.4` below
/// the mean key gap of `2^36.4`. A fixed `2^30` at smaller n would make
/// even `D = 0` adversarial (every offset far below the mean gap), so we
/// keep the paper's *relative* geometry: `M = 2^{log2(u/n) − 6.4}`, which
/// recovers exactly `2^30` at the paper's scale.
pub fn correlated_queries(
    sorted_keys: &[u64],
    count: usize,
    range_size: u64,
    degree: f64,
    seed: u64,
) -> Vec<RangeQuery> {
    assert!((0.0..=1.0).contains(&degree), "correlation degree {degree}");
    assert!(!sorted_keys.is_empty(), "correlated workload needs keys");
    let mut rng = WorkloadRng::new(seed ^ 0x5EED_0002);
    let log_gap = 64.0 - (sorted_keys.len() as f64).log2();
    let offset_exp = (log_gap - 6.4).max(1.0) * (1.0 - degree);
    let offset_span = 2f64.powf(offset_exp) as u64;
    let n = sorted_keys.len() as u64;
    fill_empty_queries(
        sorted_keys,
        count,
        || {
            let k = sorted_keys[rng.below(n) as usize];
            k.saturating_add(rng.range_inclusive(0, offset_span.max(1)))
        },
        range_size,
    )
}

/// Real workload (§6.1, Books/Osm rows): `count` keys are *extracted and
/// removed* from the dataset and used as left endpoints; ranges intersecting
/// the remaining keys are discarded. Returns `(remaining_keys, queries)` —
/// filters must be built on the remaining keys.
pub fn extract_real_queries(
    sorted_keys: &[u64],
    count: usize,
    range_size: u64,
    seed: u64,
) -> (Vec<u64>, Vec<RangeQuery>) {
    let mut rng = WorkloadRng::new(seed ^ 0x5EED_0003);
    let n = sorted_keys.len();
    let extract = count.min(n / 2);
    // Choose `extract` distinct indices.
    let mut picked = vec![false; n];
    let mut chosen = Vec::with_capacity(extract);
    while chosen.len() < extract {
        let i = rng.below(n as u64) as usize;
        if !picked[i] {
            picked[i] = true;
            chosen.push(i);
        }
    }
    let remaining: Vec<u64> = sorted_keys
        .iter()
        .enumerate()
        .filter(|(i, _)| !picked[*i])
        .map(|(_, &k)| k)
        .collect();
    let mut queries = Vec::with_capacity(extract);
    for &i in &chosen {
        let lo = sorted_keys[i];
        let hi = match lo.checked_add(range_size - 1) {
            Some(hi) => hi,
            None => continue,
        };
        if !intersects(&remaining, lo, hi) {
            queries.push(RangeQuery { lo, hi });
        }
    }
    (remaining, queries)
}

/// Non-empty workload (§6.5): a key `k` is drawn uniformly and the left
/// endpoint uniformly from `[k − L + 1, k]`, so every range contains `k`.
pub fn non_empty_queries(
    sorted_keys: &[u64],
    count: usize,
    range_size: u64,
    seed: u64,
) -> Vec<RangeQuery> {
    assert!(!sorted_keys.is_empty(), "non-empty workload needs keys");
    let mut rng = WorkloadRng::new(seed ^ 0x5EED_0004);
    let n = sorted_keys.len() as u64;
    (0..count)
        .map(|_| {
            let k = sorted_keys[rng.below(n) as usize];
            let lo_min = k.saturating_sub(range_size - 1);
            let lo = rng.range_inclusive(lo_min, k);
            let hi = lo.saturating_add(range_size - 1).max(k);
            RangeQuery { lo, hi }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate, Dataset};

    fn keys() -> Vec<u64> {
        generate(Dataset::Uniform, 10_000, 42)
    }

    #[test]
    fn uncorrelated_are_empty_and_sized() {
        let keys = keys();
        for l in [1u64, 32, 1024] {
            let qs = uncorrelated_queries(&keys, 500, l, 7);
            assert_eq!(qs.len(), 500);
            for q in &qs {
                assert_eq!(q.size(), l);
                assert!(!intersects(&keys, q.lo, q.hi), "query intersects keys");
            }
        }
    }

    #[test]
    fn correlated_are_empty_and_near_keys() {
        let keys = keys();
        for degree in [0.0, 0.4, 0.8, 1.0] {
            let qs = correlated_queries(&keys, 300, 32, degree, 11);
            assert!(!qs.is_empty());
            for q in &qs {
                assert!(!intersects(&keys, q.lo, q.hi));
            }
            if degree >= 0.8 {
                // With high correlation the predecessor key is close to lo.
                let log_gap = 64.0 - (keys.len() as f64).log2();
                let span = 2f64.powf((log_gap - 6.4).max(1.0) * (1.0 - degree)) as u64;
                let close = qs
                    .iter()
                    .filter(|q| {
                        let idx = keys.partition_point(|&k| k <= q.lo);
                        idx > 0 && q.lo - keys[idx - 1] <= span + 1
                    })
                    .count();
                assert!(
                    close as f64 > 0.9 * qs.len() as f64,
                    "degree {degree}: only {close}/{} queries near keys",
                    qs.len()
                );
            }
        }
    }

    #[test]
    fn correlated_degree_one_still_produces_queries() {
        // D = 1 gives offsets in [0, 1]: x = k intersects and is discarded,
        // x = k + 1 survives when the next key is far enough.
        let keys = keys();
        let qs = correlated_queries(&keys, 200, 1, 1.0, 3);
        assert!(qs.len() > 150, "got {} queries at D=1", qs.len());
        for q in &qs {
            assert!(!intersects(&keys, q.lo, q.hi));
        }
    }

    #[test]
    fn real_extraction_removes_keys() {
        let keys = keys();
        let (remaining, qs) = extract_real_queries(&keys, 1000, 32, 5);
        assert_eq!(remaining.len(), keys.len() - 1000);
        assert!(!qs.is_empty());
        for q in &qs {
            assert!(!intersects(&remaining, q.lo, q.hi));
            // Left endpoint was a key of the original dataset.
            assert!(keys.binary_search(&q.lo).is_ok());
        }
    }

    #[test]
    fn non_empty_queries_contain_a_key() {
        let keys = keys();
        for l in [1u64, 32, 1024] {
            let qs = non_empty_queries(&keys, 300, l, 13);
            assert_eq!(qs.len(), 300);
            for q in &qs {
                assert!(
                    intersects(&keys, q.lo, q.hi),
                    "query [{}, {}] empty",
                    q.lo,
                    q.hi
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let keys = keys();
        assert_eq!(
            uncorrelated_queries(&keys, 100, 32, 9),
            uncorrelated_queries(&keys, 100, 32, 9)
        );
        assert_eq!(
            correlated_queries(&keys, 100, 32, 0.5, 9),
            correlated_queries(&keys, 100, 32, 0.5, 9)
        );
    }

    #[test]
    fn dense_keyset_gives_up_gracefully() {
        // Keys covering a dense interval: almost no empty 32-ranges near keys.
        let keys: Vec<u64> = (0..10_000u64).collect();
        let qs = correlated_queries(&keys, 100, 32, 1.0, 1);
        // Must terminate (possibly with fewer queries) rather than loop.
        assert!(qs.len() <= 100);
        for q in &qs {
            assert!(!intersects(&keys, q.lo, q.hi));
        }
    }
}
