//! A small deterministic RNG for workload generation.
//!
//! Wraps the SplitMix64 generator from `grafite-hash` and adds the samplers
//! the dataset models need (uniform bounded, unit floats, Gaussians via
//! Box–Muller). Everything downstream is reproducible from a single seed.

use grafite_hash::mix::SplitMix64;

/// Deterministic RNG with the samplers used by the workload generators.
#[derive(Clone, Debug)]
pub struct WorkloadRng {
    inner: SplitMix64,
    cached_gaussian: Option<f64>,
}

impl WorkloadRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: SplitMix64::new(seed),
            cached_gaussian: None,
        }
    }

    /// Uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Uniform value in the **closed** interval `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard Gaussian via Box–Muller (caches the second value).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached_gaussian.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.unit_f64();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gaussian = Some(radius * theta.sin());
        radius * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = WorkloadRng::new(5);
        let mut b = WorkloadRng::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = WorkloadRng::new(1);
        for _ in 0..1000 {
            let v = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
        }
        // Degenerate single-point interval.
        assert_eq!(r.range_inclusive(7, 7), 7);
        // Full-width interval must not overflow.
        let _ = r.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = WorkloadRng::new(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = r.gaussian();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
