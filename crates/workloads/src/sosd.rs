//! Loader for SOSD-format datasets, so the harness uses the *real* Books /
//! Osm / Fb files when the user provides them.
//!
//! The SOSD benchmark stores a dataset as a little-endian `u64` element
//! count followed by that many little-endian `u64` keys. Drop e.g.
//! `books_200M_uint64` into `data/` and the harness picks it up instead of
//! the synthetic stand-in.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use crate::datasets::{generate, Dataset};
use crate::rng::WorkloadRng;

/// Reads a SOSD `uint64` binary file.
pub fn load_sosd(path: &Path) -> io::Result<Vec<u64>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut count_buf = [0u8; 8];
    reader.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf) as usize;
    let mut data = vec![0u8; count.saturating_mul(8)];
    reader.read_exact(&mut data)?;
    Ok(data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Canonical SOSD file names for the paper's datasets.
pub fn sosd_file_name(dataset: Dataset) -> Option<&'static str> {
    match dataset {
        Dataset::Books => Some("books_200M_uint64"),
        Dataset::Osm => Some("osm_cellids_200M_uint64"),
        Dataset::Fb => Some("fb_200M_uint64"),
        Dataset::Uniform | Dataset::Normal => None,
    }
}

/// Loads `dataset` from `data_dir` when a real SOSD file is present,
/// otherwise falls back to the synthetic generator. Either way the result is
/// sorted, deduplicated, and subsampled to at most `n` keys.
pub fn dataset_or_synthetic(dataset: Dataset, n: usize, seed: u64, data_dir: &Path) -> Vec<u64> {
    if let Some(file) = sosd_file_name(dataset) {
        let path = data_dir.join(file);
        if let Ok(mut keys) = load_sosd(&path) {
            keys.sort_unstable();
            keys.dedup();
            return subsample(keys, n, seed);
        }
    }
    generate(dataset, n, seed)
}

/// Uniform subsample without replacement, preserving sortedness.
fn subsample(keys: Vec<u64>, n: usize, seed: u64) -> Vec<u64> {
    if keys.len() <= n {
        return keys;
    }
    let mut rng = WorkloadRng::new(seed ^ 0x5085_0A3B);
    // Reservoir-free approach: pick a sorted random subset of indices by
    // stepping with random strides ~ len/n.
    let mut out = Vec::with_capacity(n);
    let stride = keys.len() as f64 / n as f64;
    let mut pos = 0f64;
    while out.len() < n && (pos as usize) < keys.len() {
        out.push(keys[pos as usize]);
        pos += stride * (0.5 + rng.unit_f64());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn roundtrip_sosd_format() {
        let dir = std::env::temp_dir().join("grafite_sosd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny_uint64");
        let keys = [5u64, 10, 42, u64::MAX];
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&(keys.len() as u64).to_le_bytes()).unwrap();
            for k in keys {
                f.write_all(&k.to_le_bytes()).unwrap();
            }
        }
        let loaded = load_sosd(&path).unwrap();
        assert_eq!(loaded, keys);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fallback_to_synthetic_when_missing() {
        let dir = std::env::temp_dir().join("grafite_sosd_missing");
        let keys = dataset_or_synthetic(Dataset::Books, 1000, 7, &dir);
        assert!(!keys.is_empty());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn subsample_keeps_sorted_and_bounded() {
        let keys: Vec<u64> = (0..10_000u64).collect();
        let sub = subsample(keys, 500, 3);
        assert!(sub.len() <= 500);
        assert!(sub.len() > 350);
        assert!(sub.windows(2).all(|w| w[0] < w[1]));
    }
}
