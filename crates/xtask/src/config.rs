//! The declared untrusted-input surface and the shared lint configuration.
//!
//! Everything here is a *policy declaration*: which files parse
//! attacker-controllable bytes, which functions in otherwise-trusted files
//! do, and what a conforming crate header looks like. The lints in
//! [`crate::lints`] are mechanisms; this module is the contract they
//! enforce. Grow these tables as new load paths land (the server/mmap/LSM
//! work on the ROADMAP) — a new `read_from` in a listed crate is picked up
//! automatically by the function-name rules.

/// Files whose **entire** (non-`#[cfg(test)]`) contents consume untrusted
/// bytes: the word-stream primitives, the blob header codec, and the store
/// manifest parser. L1 (panic-freedom) and L4 (unchecked arithmetic) apply
/// to every line.
pub const UNTRUSTED_FILES: &[&str] = &[
    "crates/succinct/src/io.rs",
    "crates/core/src/persist.rs",
    "crates/store/src/manifest.rs",
    "crates/store/src/mapped.rs",
    "crates/server/src/protocol.rs",
];

/// Function names that decode untrusted bytes wherever they appear inside
/// [`UNTRUSTED_FN_GLOBS`] files: the `read_from`/view/deserialize family.
/// L1 and L4 apply inside the body of every function with one of these
/// names.
pub const UNTRUSTED_FNS: &[&str] = &[
    "read_from",
    "read_from_v1",
    "read_from_impl",
    "read_head",
    "validate_parts",
    "read_payload",
    "decode_payload",
    "deserialize",
    "view",
    "load",
    "load_as",
    "open",
    "from_bytes",
    "bytes_to_words",
    "parse",
    "parse_words",
    "peek",
    "payload_cursor",
    "validate",
    "verify_checksum",
];

/// Directory prefixes searched for [`UNTRUSTED_FNS`] bodies. (Benches,
/// examples, integration tests, and the shims are deliberately absent:
/// they consume trusted, locally produced bytes.)
pub const UNTRUSTED_FN_GLOBS: &[&str] = &[
    "crates/succinct/src/",
    "crates/core/src/",
    "crates/store/src/",
    "crates/fst/src/",
    "crates/bloom/src/",
    "crates/filters/src/",
    "crates/server/src/",
];

/// The header every workspace crate must carry (L2): memory safety is
/// forbidden outright, and public API must be documented. Checked against
/// the crate root (`src/lib.rs`, or `src/main.rs` for binaries).
pub const REQUIRED_HEADERS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// Crates allowed to *deny* rather than *forbid* `unsafe_code` at the
/// root, because one allowlisted kernel module opts back in (`forbid`
/// cannot be overridden per-module). L2 accepts either spelling for
/// these; L6 polices the actual `unsafe` tokens.
pub const UNSAFE_GATED_CRATES: &[&str] = &["crates/succinct"];

/// The `deny` spelling of the unsafe header L2 accepts for
/// [`UNSAFE_GATED_CRATES`].
pub const DENY_UNSAFE_HEADER: &str = "#![deny(unsafe_code)]";

/// The only files allowed to contain `unsafe` at all (L6): the SIMD
/// kernel module, where every `unsafe` block must carry an adjacent
/// `// safety:` justification. Everywhere else in
/// [`UNSAFE_SCAN_GLOBS`], any `unsafe` token is a violation.
pub const UNSAFE_KERNEL_FILES: &[&str] = &["crates/succinct/src/simd/kernels.rs"];

/// The comment marker that justifies an `unsafe` block for L6.
pub const SAFETY_JUSTIFICATION: &str = "safety:";

/// How many lines above an `unsafe` token L6 searches for the
/// justification comment. Wider than L5's window: soundness arguments
/// for gathers and raw loads legitimately run several comment lines.
pub const SAFETY_COMMENT_WINDOW: usize = 5;

/// Directory prefixes L6 sweeps for `unsafe` tokens — every source tree
/// of the workspace (libraries, binaries, benches, integration tests,
/// examples, shims). `crates/xtask/tests/` is deliberately absent: the
/// seeded-violation fixtures plant `unsafe` on purpose.
pub const UNSAFE_SCAN_GLOBS: &[&str] = &[
    "src/",
    "examples/",
    "tests/",
    "shims/",
    "crates/bench/",
    "crates/bloom/src/",
    "crates/core/src/",
    "crates/filters/src/",
    "crates/fst/src/",
    "crates/hash/src/",
    "crates/server/src/",
    "crates/store/src/",
    "crates/succinct/",
    "crates/workloads/src/",
    "crates/xtask/src/",
];

/// Identifier fragments that mark a value as length/offset-typed for the
/// L4 unchecked-arithmetic heuristic. Matching is case-insensitive
/// substring over each operand identifier.
pub const OFFSET_NAME_FRAGMENTS: &[&str] = &[
    "len",
    "pos",
    "offset",
    "idx",
    "index",
    "start",
    "end",
    "count",
    "word",
    "byte",
    "need",
    "have",
    "size",
    "chunk",
    "block",
    "shard",
    "blob",
    "sample",
    "key",
    "width",
    "depth",
    "node",
    "leaf",
    "label",
    "ones",
    "zeros",
    "remaining",
    "total",
];

/// Short identifiers that are length/offset-typed only as exact matches
/// (loop counters and the conventional `n`).
pub const OFFSET_NAME_EXACT: &[&str] = &["n", "i", "j", "k", "s", "m"];

/// Arithmetic method-call names whose *result* is already overflow-safe:
/// a flagged operator whose operand is produced by one of these does not
/// need a second layer of checking. (`min`/`clamp` bound the value; the
/// [`SAFE_RESULT_PREFIXES`] families are explicit already.)
pub const SAFE_RESULT_METHODS: &[&str] = &["min", "clamp"];

/// Method-name prefixes whose result is overflow-explicit (L4) — the one
/// shared spelling of the `checked_`/`saturating_`/`wrapping_` families,
/// consumed by both the arithmetic lint and the taint sanitizer set.
pub const SAFE_RESULT_PREFIXES: &[&str] = &["checked_", "saturating_", "wrapping_"];

// ---------------------------------------------------------------------------
// L7 — dataflow taint. Sources are where attacker-controlled values enter a
// function; sinks are the operations a hostile length/offset must never
// reach unlaundered; sanitizers are the only things that clear taint.
// ---------------------------------------------------------------------------

/// Call names whose *result* is attacker-controlled inside the untrusted
/// surface: the word-stream primitives, the frame-payload readers, and the
/// raw little-endian decoders.
pub const TAINT_SOURCE_CALLS: &[&str] = &[
    "le_word",
    "u64_at",
    "u32_at",
    "from_le_bytes",
    "from_be_bytes",
    "word",
    "length",
    "take",
    "take_bytes",
    "read_head",
];

/// Parameter names that denote attacker-controlled buffers or values when
/// they appear in an untrusted-surface function signature.
pub const TAINT_SOURCE_PARAMS: &[&str] = &[
    "payload", "bytes", "body", "buf", "blob", "raw", "declared", "chunk", "frame", "words",
];

/// Calls that *fill* a `&mut` buffer argument with untrusted bytes
/// (`Read::read_exact` and friends): their identifier arguments become
/// tainted.
pub const TAINT_FILL_CALLS: &[&str] = &["read_exact", "read_exact_at", "read_at", "read"];

/// Call names whose argument is an allocation size, raw offset, or length
/// (L7 sinks). `vec![_; n]`, slice indexing, and shift amounts are
/// recognized structurally by the lint rather than by name.
pub const TAINT_SINK_CALLS: &[&str] = &[
    "with_capacity",
    "reserve",
    "reserve_exact",
    "resize",
    "set_len",
    "get_unchecked",
    "get_unchecked_mut",
    "read_exact_at",
    "read_at",
];

/// Method names that launder taint for L7 (the value is bounded by a
/// trusted operand). Note `wrapping_*` is deliberately *not* here even
/// though L4 accepts it: a wrapped attacker length is overflow-explicit
/// but still attacker-sized.
pub const TAINT_SANITIZER_METHODS: &[&str] = &["min", "clamp"];

/// Method-name prefixes that launder taint for L7.
pub const TAINT_SANITIZER_PREFIXES: &[&str] = &["checked_", "saturating_"];

// ---------------------------------------------------------------------------
// L8 — atomics happens-before. Every atomic op in the audit globs must
// declare its protocol in a machine-checkable `// ordering:` grammar:
//
//     // ordering: <class> [pairs-with <var>.<method>[, <var>.<method>…]]
//     //           [; free-prose rationale]
//
// where `<class>` is one of [`ORDERING_CLASSES`]. `Relaxed-*` classes must
// not declare a publish edge; `Release->Acquire`/`AcqRel` must, and every
// named `<var>.<method>` target must resolve to a real opposite-side site
// of the same atomic somewhere in the audited tree.
// ---------------------------------------------------------------------------

/// Atomic op method names L8 recognizes as sites (receiver`.method(…,
/// Ordering::…)`).
pub const ATOMIC_OP_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The classes of the `// ordering:` grammar. `Relaxed-counter` is a
/// statistic that tolerates staleness; `Relaxed-flag` is a monotonic
/// latch with no data published behind it; `Release->Acquire` is one side
/// of a publish edge; `AcqRel` is a read-modify-write participating in
/// both directions. SeqCst has no class: redesign or `lint:allow`.
pub const ORDERING_CLASSES: &[&str] = &[
    "Relaxed-counter",
    "Relaxed-flag",
    "Release->Acquire",
    "AcqRel",
];

/// The keyword introducing pairing targets in the `// ordering:` grammar.
pub const ORDERING_PAIRS_WITH: &str = "pairs-with";

/// Where the atomic-ordering audit (L5) looks. Every
/// `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` in these trees must
/// carry an `// ordering:` justification comment.
pub const ATOMIC_AUDIT_GLOBS: &[&str] = &["crates/store/src/", "crates/server/src/"];

/// The atomic memory orderings L5 recognizes (`std::cmp::Ordering`'s
/// variants deliberately excluded).
pub const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The comment marker that justifies an atomic ordering for L5.
pub const ORDERING_JUSTIFICATION: &str = "ordering:";

/// How many lines above an `Ordering::` use L5 searches for the
/// justification comment.
pub const ORDERING_COMMENT_WINDOW: usize = 3;

/// Keywords that may legitimately precede a `[` without it being an index
/// expression (slice patterns, array types, `in [..]` iteration, …).
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "as", "mut", "ref", "move", "const", "static",
    "dyn", "impl", "where", "break", "continue", "type", "fn", "pub", "use", "unsafe", "while",
    "for", "loop", "box",
];
