//! Intra-procedural dataflow over the token stream: the engine behind the
//! L7 taint lint.
//!
//! This is not a Rust parser. [`stmt`] splits a function body into
//! statement-ish fragments (let-bindings, assignments, control headers,
//! expression statements) and extracts, per fragment, what it *defines*,
//! what it *reads*, which calls it makes, and whether it guards, fills,
//! sanitizes, or sinks a value. [`taint`] then runs a worklist propagator
//! over those fragments to a fixpoint: sources seed taint, definitions
//! propagate it along def-use chains (loop back-edges converge by
//! re-iteration), sanitizers and bounds-compare guards clear it, and a
//! tainted value reaching a sink is a finding.
//!
//! Precision is deliberately traded in the false-negative direction at
//! guard sites (any bounds comparison clears the compared chain) and in
//! the conservative direction at sources — that combination keeps the
//! real tree clean to analyze while still catching the canonical bug
//! shape: a decoded length flowing into an allocation unguarded.

pub mod stmt;
pub mod taint;

pub use stmt::{parse_fn, FnFlow, SinkKind, SinkUse, Stmt};
pub use taint::{analyze, TaintFinding};
