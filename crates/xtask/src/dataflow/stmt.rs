//! Statement/expression extraction over the masked token stream.
//!
//! A function body is split into *fragments* at `;` (outside brackets),
//! `{`, `}`, and top-level `,` boundaries. Each fragment is summarized
//! into a [`Stmt`]: variables defined, identifiers read, calls made,
//! whether the fragment is a bounds-compare guard, plus every taint sink
//! occurrence inside it. No type information, no expression trees — just
//! enough def-use structure for the worklist propagator in
//! [`super::taint`].

use crate::config::{
    NON_INDEX_KEYWORDS, TAINT_FILL_CALLS, TAINT_SANITIZER_METHODS, TAINT_SANITIZER_PREFIXES,
    TAINT_SINK_CALLS, TAINT_SOURCE_CALLS,
};
use crate::scan::{FnSpan, SourceFile, Token};

/// What kind of sink an occurrence is (for diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// `with_capacity`/`reserve`/`resize`/`set_len`/… call argument.
    SizedCall,
    /// `vec![init; len]` repeat length.
    VecRepeat,
    /// `<<` / `>>` shift amount.
    ShiftAmount,
    /// Bare slice index `buf[i]`.
    SliceIndex,
}

impl SinkKind {
    /// Short diagnostic label.
    pub fn label(self) -> &'static str {
        match self {
            SinkKind::SizedCall => "size/offset argument",
            SinkKind::VecRepeat => "`vec![_; n]` length",
            SinkKind::ShiftAmount => "shift amount",
            SinkKind::SliceIndex => "slice index",
        }
    }
}

/// One sink occurrence inside a fragment.
#[derive(Clone, Debug)]
pub struct SinkUse {
    /// Sink kind.
    pub kind: SinkKind,
    /// Callee or operator, for the message (`with_capacity`, `<<`, …).
    pub callee: String,
    /// 1-based line of the sink token itself.
    pub line: usize,
    /// Identifiers appearing in the sink's argument expression.
    pub arg_vars: Vec<String>,
    /// Whether the argument contains a taint-source call directly.
    pub arg_has_source: bool,
    /// Whether the argument routes through a sanitizer (`min`, `checked_*`…).
    pub arg_sanitized: bool,
}

/// One statement-ish fragment of a function body.
#[derive(Clone, Debug, Default)]
pub struct Stmt {
    /// 1-based line of the fragment's first token.
    pub line: usize,
    /// Variables this fragment binds or assigns.
    pub defines: Vec<String>,
    /// Identifiers the fragment reads (receivers, operands; `.len()`
    /// receivers excluded — a length of a tainted buffer is trusted).
    pub deps: Vec<String>,
    /// Whether the fragment calls a taint source.
    pub has_source: bool,
    /// Whether the fragment's value routes through a sanitizer.
    pub sanitized: bool,
    /// Buffer arguments of fill calls (`read_exact(&mut buf)`).
    pub fills: Vec<String>,
    /// Whether the fragment is a guard (a definition-free bounds compare).
    pub is_guard: bool,
    /// Identifiers compared in a guard fragment.
    pub guard_vars: Vec<String>,
    /// Sink occurrences inside the fragment.
    pub sinks: Vec<SinkUse>,
}

/// A parsed function: parameter names plus the fragment list, in source
/// order (nested blocks flattened).
#[derive(Clone, Debug)]
pub struct FnFlow {
    /// The function's name.
    pub name: String,
    /// 1-based line of the signature.
    pub line: usize,
    /// Parameter names, pattern-bound names included.
    pub params: Vec<String>,
    /// Body fragments in source order.
    pub stmts: Vec<Stmt>,
}

/// Rust keywords and primitive type names never treated as dataflow
/// variables.
const NON_VAR_WORDS: &[&str] = &[
    "let", "mut", "ref", "move", "if", "else", "match", "return", "as", "in", "fn", "pub", "use",
    "break", "continue", "while", "for", "loop", "where", "impl", "dyn", "box", "const", "static",
    "type", "struct", "enum", "trait", "mod", "crate", "super", "self", "true", "false", "unsafe",
    "async", "await", "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32",
    "i64", "i128", "f32", "f64", "bool", "str", "char",
];

fn is_var_word(text: &str) -> bool {
    !NON_VAR_WORDS.contains(&text)
        && text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

fn is_sanitizer(name: &str) -> bool {
    TAINT_SANITIZER_METHODS.contains(&name)
        || TAINT_SANITIZER_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Parses the function at `span` into a [`FnFlow`].
pub fn parse_fn(file: &SourceFile, span: &FnSpan) -> FnFlow {
    let toks = &file.tokens;
    FnFlow {
        name: span.name.clone(),
        line: span.lines.0,
        params: parse_params(&toks[span.sig_start..span.open]),
        stmts: split_fragments(&toks[span.open + 1..span.close])
            .into_iter()
            .map(analyze_fragment)
            .collect(),
    }
}

/// Extracts parameter names from the signature tokens (`fn` through the
/// token before the body `{`).
fn parse_params(sig: &[Token]) -> Vec<String> {
    // The parameter list is the first `(` at angle depth 0 (generic
    // parameter lists may contain `Fn()` bounds behind `<`).
    let mut angle: i32 = 0;
    let mut open = None;
    for (i, t) in sig.iter().enumerate() {
        match t.text.as_str() {
            "(" if angle <= 0 => {
                open = Some(i);
                break;
            }
            "<" | "<<" => angle += if t.text == "<<" { 2 } else { 1 },
            ">" | ">>" => angle -= if t.text == ">>" { 2 } else { 1 },
            _ => {}
        }
    }
    let Some(open) = open else { return Vec::new() };
    let mut depth = 0usize;
    let mut close = open;
    for (i, t) in sig.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    // Split on top-level commas; each segment's pattern is everything
    // before its first top-level `:`.
    let mut params = Vec::new();
    let mut seg_start = open + 1;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut i = open + 1;
    while i <= close {
        let text = sig[i].text.as_str();
        match text {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "<" => angle += 1,
            ">" => angle -= 1,
            _ => {}
        }
        let boundary = (text == "," && paren == 0 && angle <= 0) || i == close;
        if boundary {
            let seg = &sig[seg_start..i];
            let pat_end = seg.iter().position(|t| t.text == ":").unwrap_or(seg.len());
            for t in &seg[..pat_end] {
                if t.is_ident && is_var_word(&t.text) && t.text != "_" {
                    params.push(t.text.clone());
                }
            }
            seg_start = i + 1;
        }
        i += 1;
    }
    params
}

/// Splits body tokens into fragments at `;` (outside `[]`/`()`), `{`,
/// `}`, and top-level `,`.
fn split_fragments(body: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (i, t) in body.iter().enumerate() {
        let boundary = match t.text.as_str() {
            "(" => {
                paren += 1;
                false
            }
            ")" => {
                paren -= 1;
                false
            }
            "[" => {
                bracket += 1;
                false
            }
            "]" => {
                bracket -= 1;
                false
            }
            ";" => paren == 0 && bracket == 0,
            "," => paren == 0 && bracket == 0,
            "{" | "}" => true,
            _ => false,
        };
        if boundary {
            if i > start {
                out.push(&body[start..i]);
            }
            start = i + 1;
        }
    }
    if body.len() > start {
        out.push(&body[start..]);
    }
    out
}

/// Collects variable reads from `toks`, skipping call names, path
/// prefixes, macro names, and `.len()`/`.is_empty()` receivers.
fn collect_deps(toks: &[Token], deps: &mut Vec<String>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident || !is_var_word(&t.text) || t.text == "_" {
            continue;
        }
        match toks.get(i + 1).map(|n| n.text.as_str()) {
            Some("(") | Some("::") | Some("!") => continue,
            _ => {}
        }
        // `buf.len()` / `buf.is_empty()`: the receiver's *length* is
        // trusted even when its contents are not.
        if toks.get(i + 1).is_some_and(|n| n.text == ".")
            && toks
                .get(i + 2)
                .is_some_and(|m| m.text == "len" || m.text == "is_empty")
            && toks.get(i + 3).is_some_and(|p| p.text == "(")
        {
            continue;
        }
        if !deps.contains(&t.text) {
            deps.push(t.text.clone());
        }
    }
}

/// Matching `)` for the `(` at `open` within `toks`.
fn close_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Summarizes one argument-expression token range for sink reporting.
fn sink_args(toks: &[Token]) -> (Vec<String>, bool, bool) {
    let mut vars = Vec::new();
    collect_deps(toks, &mut vars);
    // `&mut buf` arguments are output buffers (e.g. `read_exact_at`'s
    // destination), not size/offset inputs — their taint is irrelevant to
    // the sink.
    for (i, t) in toks.iter().enumerate() {
        if t.text == "mut" && i > 0 && toks[i - 1].text == "&" {
            if let Some(b) = toks.get(i + 1) {
                vars.retain(|v| v != &b.text);
            }
        }
    }
    let mut has_source = false;
    let mut sanitized = false;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            if TAINT_SOURCE_CALLS.contains(&t.text.as_str()) {
                has_source = true;
            }
            if is_sanitizer(&t.text) {
                sanitized = true;
            }
        }
    }
    (vars, has_source, sanitized)
}

/// Builds the [`Stmt`] summary for one fragment.
fn analyze_fragment(frag: &[Token]) -> Stmt {
    let mut st = Stmt {
        line: frag.first().map(|t| t.line).unwrap_or(0),
        ..Stmt::default()
    };

    // --- definition structure -------------------------------------------
    let is_let = frag.first().is_some_and(|t| t.text == "let");
    // A single top-level `=` splits pattern/lhs from rhs. (The tokenizer
    // emits `==`, `<=`, `>=`, `!=`, `=>` as units, so a bare `=` really is
    // an assignment.)
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut eq_at = None;
    for (i, t) in frag.iter().enumerate() {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "=" if paren == 0 && bracket == 0 && eq_at.is_none() => eq_at = Some(i),
            _ => {}
        }
    }
    let compound_at = frag
        .iter()
        .position(|t| matches!(t.text.as_str(), "+=" | "-=" | "*=" | "<<="));

    let is_for = frag.first().is_some_and(|t| t.text == "for");
    let for_in = is_for
        .then(|| frag.iter().position(|t| t.text == "in"))
        .flatten();

    let (pat, rhs): (&[Token], &[Token]) = match (is_for, for_in, is_let, eq_at, compound_at) {
        (true, Some(p), ..) => (&frag[1..p], &frag[p + 1..]),
        (_, _, true, Some(e), _) => (&frag[1..e], &frag[e + 1..]),
        (_, _, true, None, _) => (&frag[1..], &frag[..0]),
        (_, _, false, Some(e), _) => (&frag[..e], &frag[e + 1..]),
        (_, _, false, None, Some(c)) => (&frag[..c], &frag[c + 1..]),
        (_, _, false, None, None) => (&frag[..0], frag),
    };

    if is_let || (is_for && for_in.is_some()) {
        // Pattern idents (stop at a top-level `:` type annotation).
        let mut depth = 0i32;
        for (i, t) in pat.iter().enumerate() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ":" if depth == 0 => break,
                _ => {}
            }
            if t.is_ident
                && is_var_word(&t.text)
                && t.text != "_"
                && !pat.get(i + 1).is_some_and(|n| n.text == "::")
            {
                st.defines.push(t.text.clone());
            }
        }
    } else if eq_at.is_some() || compound_at.is_some() {
        // Assignment target: the last ident of the lhs path (`self.pos`
        // defines `pos`; `arr[i]` defines `arr`).
        if let Some(t) = pat
            .iter()
            .rev()
            .find(|t| t.is_ident && is_var_word(&t.text))
        {
            st.defines.push(t.text.clone());
        }
        if compound_at.is_some() {
            // `x += e` also reads x.
            collect_deps(pat, &mut st.deps);
        }
    }

    collect_deps(rhs, &mut st.deps);
    if !is_let && !is_for && eq_at.is_some() && pat.iter().any(|t| t.text == "[") {
        // Index-assign (`arr[i] = e`) reads the index expression too.
        collect_deps(pat, &mut st.deps);
    }

    // --- calls: sources, sanitizers, fills, sized sinks -----------------
    let scan_range: &[Token] = frag;
    for (i, t) in scan_range.iter().enumerate() {
        if !t.is_ident || !scan_range.get(i + 1).is_some_and(|n| n.text == "(") {
            continue;
        }
        let name = t.text.as_str();
        if TAINT_SOURCE_CALLS.contains(&name) {
            st.has_source = true;
        }
        if is_sanitizer(name) {
            st.sanitized = true;
        }
        if TAINT_FILL_CALLS.contains(&name) {
            // Only `&mut buf` arguments are written by a fill call; the
            // offset/length arguments are plain reads.
            let close = close_paren(scan_range, i + 1);
            let args = &scan_range[i + 2..close];
            for (k, a) in args.iter().enumerate() {
                if a.text == "mut" && k > 0 && args[k - 1].text == "&" {
                    if let Some(b) = args.get(k + 1) {
                        if b.is_ident && is_var_word(&b.text) {
                            st.fills.push(b.text.clone());
                        }
                    }
                }
            }
        }
        if TAINT_SINK_CALLS.contains(&name) {
            let close = close_paren(scan_range, i + 1);
            let (arg_vars, arg_has_source, arg_sanitized) = sink_args(&scan_range[i + 2..close]);
            st.sinks.push(SinkUse {
                kind: SinkKind::SizedCall,
                callee: name.to_string(),
                line: t.line,
                arg_vars,
                arg_has_source,
                arg_sanitized,
            });
        }
    }

    // --- `vec![init; len]` ----------------------------------------------
    let mut i = 0;
    while i + 2 < scan_range.len() {
        if scan_range[i].text == "vec"
            && scan_range[i + 1].text == "!"
            && scan_range[i + 2].text == "["
        {
            let mut depth = 0i32;
            let mut semi = None;
            let mut end = scan_range.len();
            for (j, t) in scan_range.iter().enumerate().skip(i + 2) {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    ";" if depth == 1 => semi = Some(j),
                    _ => {}
                }
            }
            if let Some(semi) = semi {
                let (arg_vars, arg_has_source, arg_sanitized) =
                    sink_args(&scan_range[semi + 1..end]);
                st.sinks.push(SinkUse {
                    kind: SinkKind::VecRepeat,
                    callee: "vec![_; _]".to_string(),
                    line: scan_range[i].line,
                    arg_vars,
                    arg_has_source,
                    arg_sanitized,
                });
            }
            i = end;
        }
        i += 1;
    }

    // --- shift amounts ---------------------------------------------------
    for (i, t) in scan_range.iter().enumerate() {
        if !matches!(t.text.as_str(), "<<" | ">>" | "<<=") {
            continue;
        }
        // The right operand: an ident chain (possibly parenthesized).
        let mut j = i + 1;
        while scan_range.get(j).is_some_and(|n| n.text == "(") {
            j += 1;
        }
        let Some(rhs_tok) = scan_range.get(j) else {
            continue;
        };
        if rhs_tok.is_ident && is_var_word(&rhs_tok.text) {
            let upto = (j + 4).min(scan_range.len());
            let (_, _, arg_sanitized) = sink_args(&scan_range[j..upto]);
            st.sinks.push(SinkUse {
                kind: SinkKind::ShiftAmount,
                callee: t.text.clone(),
                line: t.line,
                arg_vars: vec![rhs_tok.text.clone()],
                arg_has_source: false,
                arg_sanitized,
            });
        }
    }

    // --- bare slice indexing ---------------------------------------------
    for (i, t) in scan_range.iter().enumerate() {
        if t.text != "[" || i == 0 {
            continue;
        }
        let prev = &scan_range[i - 1];
        let indexable = (prev.is_ident && !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if !indexable {
            continue;
        }
        let mut depth = 0i32;
        let mut end = scan_range.len();
        for (j, t2) in scan_range.iter().enumerate().skip(i) {
            match t2.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let inner = &scan_range[i + 1..end];
        // Range-less constant indices and `..` slicing of constants are
        // L1's business; L7 only cares when a variable appears.
        let (arg_vars, arg_has_source, arg_sanitized) = sink_args(inner);
        if !arg_vars.is_empty() || arg_has_source {
            st.sinks.push(SinkUse {
                kind: SinkKind::SliceIndex,
                callee: format!("{}[...]", prev.text),
                line: t.line,
                arg_vars,
                arg_has_source,
                arg_sanitized,
            });
        }
    }

    // --- guard detection --------------------------------------------------
    // A definition-free fragment containing a comparison clears the
    // compared chain (bounds-compare guard). `<`/`>` next to `::` are
    // turbofish, not comparisons.
    if st.defines.is_empty() {
        let mut compared = false;
        for (i, t) in scan_range.iter().enumerate() {
            let is_cmp = match t.text.as_str() {
                "==" | "!=" | "<=" | ">=" => true,
                "<" | ">" => {
                    let turbofish = (i > 0 && scan_range[i - 1].text == "::")
                        || scan_range.get(i + 1).is_some_and(|n| n.text == "::");
                    !turbofish
                }
                _ => false,
            };
            if is_cmp {
                compared = true;
                break;
            }
        }
        if compared {
            st.is_guard = true;
            collect_deps(scan_range, &mut st.guard_vars);
        }
    }

    st.deps.dedup();
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_of(src: &str) -> FnFlow {
        let f = SourceFile::scan("t.rs", src);
        let spans = f.fn_spans();
        parse_fn(&f, &spans[0])
    }

    #[test]
    fn params_and_let_defs() {
        let flow = flow_of("fn f(payload: &[u8], off: usize) { let (a, b) = (off, 1); }");
        assert_eq!(flow.params, ["payload", "off"]);
        let defs: Vec<_> = flow.stmts.iter().flat_map(|s| s.defines.clone()).collect();
        assert!(defs.contains(&"a".to_string()) && defs.contains(&"b".to_string()));
    }

    #[test]
    fn generic_params_parse() {
        let flow = flow_of("fn f<S: Fn() -> Vec<u8>>(src: S, map: HashMap<u8, u8>) {}");
        assert_eq!(flow.params, ["src", "map"]);
    }

    #[test]
    fn source_and_sink_recognized() {
        let flow = flow_of(
            "fn f(payload: &[u8]) { let n = u32_at(payload, 0); let v = Vec::with_capacity(n); }",
        );
        assert!(flow.stmts.iter().any(|s| s.has_source));
        let sink = flow
            .stmts
            .iter()
            .flat_map(|s| s.sinks.iter())
            .find(|s| s.kind == SinkKind::SizedCall)
            .expect("with_capacity sink");
        assert_eq!(sink.arg_vars, ["n"]);
    }

    #[test]
    fn vec_repeat_and_shift_sinks() {
        let flow = flow_of("fn f(n: usize, w: u32) { let b = vec![0u8; n]; let x = 1u64 << w; }");
        let kinds: Vec<SinkKind> = flow
            .stmts
            .iter()
            .flat_map(|s| s.sinks.iter().map(|k| k.kind))
            .collect();
        assert!(kinds.contains(&SinkKind::VecRepeat), "{kinds:?}");
        assert!(kinds.contains(&SinkKind::ShiftAmount), "{kinds:?}");
    }

    #[test]
    fn guards_detected_only_without_defs() {
        let flow = flow_of("fn f(n: usize) { if n > 16 { } let ok = n == 3; }");
        assert!(flow
            .stmts
            .iter()
            .any(|s| s.is_guard && s.guard_vars.contains(&"n".to_string())));
        // The `let ok = …` fragment defines, so it is not a guard.
        assert!(flow
            .stmts
            .iter()
            .filter(|s| s.defines.contains(&"ok".to_string()))
            .all(|s| !s.is_guard));
    }

    #[test]
    fn len_receiver_is_not_a_dep() {
        let flow = flow_of("fn f(body: &[u8], want: usize) { if body.len() != want { } }");
        let guard = flow.stmts.iter().find(|s| s.is_guard).expect("guard");
        assert!(guard.guard_vars.contains(&"want".to_string()));
        assert!(!guard.guard_vars.contains(&"body".to_string()));
    }

    #[test]
    fn sanitized_rhs_flagged() {
        let flow = flow_of("fn f(n: usize) { let w = n.checked_mul(16); }");
        assert!(flow.stmts.iter().any(|s| s.sanitized));
    }

    #[test]
    fn fill_calls_taint_buffers() {
        let flow = flow_of("fn f(r: &mut R) { let mut buf = [0u8; 4]; r.read_exact(&mut buf); }");
        assert!(flow
            .stmts
            .iter()
            .any(|s| s.fills.contains(&"buf".to_string())));
    }
}
