//! The worklist taint propagator over a [`FnFlow`].
//!
//! State is a map `variable → provenance line`. Seeds: parameters whose
//! names are in [`crate::config::TAINT_SOURCE_PARAMS`], plus every
//! definition whose right-hand side calls a
//! [`crate::config::TAINT_SOURCE_CALLS`] source or reads an
//! already-tainted variable. Sanitized definitions
//! (`checked_*`/`saturating_*`/`min`/`clamp`) bind clean; a
//! definition-free bounds comparison clears the compared variables *and*
//! their definition-dependency closure (guarding `want` vouches for the
//! `count` it was derived from). The fragment list is re-iterated to a
//! fixpoint so loop back-edges converge; findings are collected on the
//! final, stable pass so guard kills are applied positionally.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::TAINT_SOURCE_PARAMS;
use crate::dataflow::stmt::{FnFlow, SinkKind};

/// One taint violation inside a function.
#[derive(Clone, Debug)]
pub struct TaintFinding {
    /// 1-based line of the sink.
    pub line: usize,
    /// Diagnostic text.
    pub message: String,
}

/// Maximum fixpoint passes; the state is monotone between guard kills, so
/// real functions stabilize in 2–3.
const MAX_PASSES: usize = 8;

/// Removes `var` and its definition-dependency closure from the taint map.
fn clear_chain(
    var: &str,
    taint: &mut BTreeMap<String, usize>,
    defdeps: &BTreeMap<String, Vec<String>>,
) {
    let mut stack = vec![var.to_string()];
    let mut seen = BTreeSet::new();
    while let Some(v) = stack.pop() {
        if !seen.insert(v.clone()) {
            continue;
        }
        taint.remove(&v);
        if let Some(deps) = defdeps.get(&v) {
            stack.extend(deps.iter().cloned());
        }
    }
}

/// Runs the propagator and returns the violations.
pub fn analyze(flow: &FnFlow) -> Vec<TaintFinding> {
    let mut taint: BTreeMap<String, usize> = BTreeMap::new();
    let mut defdeps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for p in &flow.params {
        if TAINT_SOURCE_PARAMS.contains(&p.as_str()) {
            taint.insert(p.clone(), flow.line);
        }
    }
    let seeds = taint.clone();

    let mut findings: BTreeMap<(usize, String), String> = BTreeMap::new();
    let mut prev_keys: Option<Vec<String>> = None;
    for pass in 0..MAX_PASSES {
        // Re-seed parameters each pass: a guard kill on a parameter chain
        // is positional, not permanent, and the pass starts at fn entry.
        for (k, v) in &seeds {
            taint.entry(k.clone()).or_insert(*v);
        }
        let keys: Vec<String> = taint.keys().cloned().collect();
        let stable = prev_keys.as_ref() == Some(&keys);
        prev_keys = Some(keys);
        let report = stable || pass == MAX_PASSES - 1;

        for st in &flow.stmts {
            if st.is_guard {
                for v in &st.guard_vars {
                    clear_chain(v, &mut taint, &defdeps);
                }
            }

            if report {
                for sink in &st.sinks {
                    if sink.arg_sanitized {
                        continue;
                    }
                    let tainted_var = sink.arg_vars.iter().find(|v| taint.contains_key(*v));
                    let origin = match (tainted_var, sink.arg_has_source) {
                        (Some(v), _) => Some(format!(
                            "tainted `{v}` (untrusted since line {})",
                            taint[v.as_str()]
                        )),
                        (None, true) => Some("a freshly decoded untrusted value".to_string()),
                        (None, false) => None,
                    };
                    if let Some(origin) = origin {
                        findings.insert(
                            (sink.line, sink.callee.clone()),
                            format!(
                                "{origin} reaches {} `{}` unguarded: clamp/checked_* it or \
                                 compare it against a trusted bound first",
                                sink.kind.label(),
                                sink.callee
                            ),
                        );
                    }
                }
            }

            // Fill calls taint their buffer arguments in place.
            for f in &st.fills {
                taint.entry(f.clone()).or_insert(st.line);
            }

            if st.defines.is_empty() {
                continue;
            }
            let rhs_tainted = st.has_source || st.deps.iter().any(|d| taint.contains_key(d));
            for d in &st.defines {
                defdeps.insert(d.clone(), st.deps.clone());
                if st.sanitized || !rhs_tainted {
                    taint.remove(d);
                } else {
                    let line = st
                        .deps
                        .iter()
                        .find_map(|dep| taint.get(dep).copied())
                        .unwrap_or(st.line);
                    taint.insert(d.clone(), line);
                }
            }
        }

        if report {
            break;
        }
    }

    findings
        .into_iter()
        .map(|((line, _), message)| TaintFinding { line, message })
        .collect()
}

/// Convenience: which sink kinds exist (used by tests to assert coverage).
pub fn sink_kinds() -> [SinkKind; 4] {
    [
        SinkKind::SizedCall,
        SinkKind::VecRepeat,
        SinkKind::ShiftAmount,
        SinkKind::SliceIndex,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::stmt::parse_fn;
    use crate::scan::SourceFile;

    fn run(src: &str) -> Vec<TaintFinding> {
        let f = SourceFile::scan("t.rs", src);
        let spans = f.fn_spans();
        let mut out = Vec::new();
        for span in &spans {
            out.extend(analyze(&parse_fn(&f, span)));
        }
        out
    }

    #[test]
    fn decoded_length_reaching_with_capacity_flags() {
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let n = u32_at(payload, 0).unwrap_or(0) as usize;\n    Vec::with_capacity(n)\n}",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("`n`"), "{}", found[0].message);
    }

    #[test]
    fn bounds_guard_clears_taint() {
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let n = u32_at(payload, 0).unwrap_or(0) as usize;\n    if n > 1024 {\n        return Vec::new();\n    }\n    Vec::with_capacity(n)\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn guard_on_derived_value_clears_the_chain() {
        // Guarding `want` (derived from `count`) vouches for `count` too —
        // the decode_batch shape.
        let found = run(
            "fn f(payload: &[u8], body: &[u8]) -> Vec<u8> {\n    let count = u32_at(payload, 0).unwrap_or(0) as usize;\n    let want = count.checked_mul(16).unwrap_or(0);\n    if body.len() != want {\n        return Vec::new();\n    }\n    Vec::with_capacity(count)\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn sanitizer_in_sink_arg_passes() {
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let n = u32_at(payload, 0).unwrap_or(0) as usize;\n    Vec::with_capacity(n.min(1024))\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn sanitized_definition_binds_clean() {
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let n = u32_at(payload, 0).unwrap_or(0) as usize;\n    let m = n.min(64);\n    Vec::with_capacity(m)\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn taint_survives_value_laundering_through_locals() {
        // The flow L4's name heuristic cannot see: neutral names all the way.
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let quota = u32_at(payload, 0).unwrap_or(0) as usize;\n    let budget = quota;\n    Vec::with_capacity(budget)\n}",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn loop_carried_taint_converges() {
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let mut acc = 0usize;\n    for off in 0..4 {\n        acc = u32_at(payload, off).unwrap_or(0) as usize;\n    }\n    Vec::with_capacity(acc)\n}",
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn tainted_shift_amount_flags() {
        let found = run(
            "fn f(payload: &[u8]) -> u64 {\n    let w = u32_at(payload, 0).unwrap_or(0);\n    1u64 << w\n}",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("shift"), "{}", found[0].message);
    }

    #[test]
    fn tainted_slice_index_flags() {
        let found = run(
            "fn f(payload: &[u8], table: &[u8]) -> u8 {\n    let i = u32_at(payload, 0).unwrap_or(0) as usize;\n    table[i]\n}",
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn fill_call_taints_buffer_contents() {
        let found = run(
            "fn f(r: &mut R, table: &[u8]) -> u8 {\n    let mut four = [0u8; 4];\n    r.read_exact(&mut four);\n    let i = four[0] as usize;\n    table[i]\n}",
        );
        // four[0] itself is a constant index of a fixed array (not
        // flagged); `table[i]` with i derived from the filled buffer is.
        assert!(
            found.iter().any(|f| f.line == 5),
            "expected the table[i] index to flag: {found:?}"
        );
    }

    #[test]
    fn len_of_tainted_buffer_is_clean() {
        let found = run(
            "fn f(payload: &[u8]) -> Vec<u8> {\n    let n = payload.len();\n    Vec::with_capacity(n)\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn untainted_function_is_silent() {
        let found = run("fn f(n_local: usize) -> Vec<u8> { Vec::with_capacity(n_local) }");
        assert!(found.is_empty(), "{found:?}");
    }
}
