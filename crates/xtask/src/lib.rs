//! Repo-specific static analysis for the Grafite workspace.
//!
//! `cargo run -p xtask -- lint` runs eight lints (see [`lints`]) that
//! encode this repository's correctness contract:
//!
//! - **L1 panic-freedom** — no `unwrap`/`expect`/panicking macros/bare
//!   indexing in untrusted-input scopes;
//! - **L2 crate-header conformance** — every crate forbids `unsafe_code`
//!   (gated crates may deny) and warns on `missing_docs`;
//! - **L3 format-constant consistency** — version/spec-id constants agree
//!   with the committed golden blobs;
//! - **L4 unchecked arithmetic** — no bare `+`/`*`/`<<` on
//!   length/offset-*named* values in untrusted scopes;
//! - **L5 atomic-ordering audit** — every atomic `Ordering::` in the
//!   audited crates carries an `// ordering:` comment;
//! - **L6 unsafe-kernel confinement** — `unsafe` only in the allowlisted
//!   SIMD kernel module, every block `// safety:`-justified;
//! - **L7 dataflow taint** — a value *derived from attacker bytes*
//!   (whatever it is named) never reaches an allocation size, slice
//!   index, raw-read offset, or shift amount without passing a
//!   `checked_*`/`saturating_*`/`min`/`clamp` sanitizer or an explicit
//!   bounds comparison ([`dataflow`]);
//! - **L8 happens-before pairing** — every `// ordering:` comment follows
//!   the machine-checkable grammar in [`config`], and every declared
//!   publish edge resolves to a live Release/Acquire partner site.
//!
//! L1/L4 and L7 are complementary: L4 is the cheap name heuristic, L7 is
//! the provenance analysis that catches laundering through neutral
//! names. L5 and L8 are likewise layered: L5 demands a justification
//! exists, L8 demands it parses and its pairing claims are true.
//!
//! The crate is dependency-free and fully offline: plain `std::fs` walks
//! plus a hand-rolled Rust lexer ([`scan`]) that masks comments and
//! strings before any rule looks at the tokens. The analysis trades a
//! small amount of precision (recovered via the counted
//! `// lint:allow(reason)` escape hatch) for zero build-time cost, zero
//! dependencies, and rules that are trivially auditable in [`config`].
//! Each source file is read and tokenized exactly once per run; the
//! report carries per-lint wall time so the cost stays observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dataflow;
pub mod lints;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lints::{Finding, Scopes, Sink};
use scan::{AllowUse, SourceFile};

/// The lint ids, in report order.
pub const LINT_IDS: [&str; 8] = ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8"];

/// Per-lint cost and yield, for the summary footer and the CI step
/// summary.
#[derive(Clone, Debug)]
pub struct LintStat {
    /// Lint id (`"L1"`…`"L8"`).
    pub lint: &'static str,
    /// Violations this lint reported.
    pub findings: usize,
    /// Wall time spent inside this lint's checker.
    pub wall: Duration,
}

/// The outcome of a full lint pass.
#[derive(Default)]
pub struct LintReport {
    /// Violations, sorted by file then line. Non-empty ⇒ the run fails.
    pub findings: Vec<Finding>,
    /// Counted `lint:allow` suppressions, for the summary footer.
    pub allows: Vec<AllowUse>,
    /// How many files the scoped lints actually scanned.
    pub files_scanned: usize,
    /// Per-lint violation counts and wall times, in [`LINT_IDS`] order.
    pub per_lint: Vec<LintStat>,
}

/// Locates the workspace root: the ancestor of this crate's manifest dir
/// that holds the workspace `Cargo.toml`.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Recursively collects `.rs` files under `root/prefix`, returned as
/// workspace-relative paths with `/` separators, sorted.
fn walk_rs(root: &Path, prefix: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(prefix)];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Runs all eight lints from `root` and returns the combined report.
///
/// Every `.rs` file any scoped lint cares about is read from disk and
/// tokenized exactly once; the resulting [`SourceFile`] cache is shared
/// by L1/L4/L5/L6/L7/L8 (L2/L3 additionally read manifests and golden
/// blobs, which are not Rust sources).
pub fn run_lints(root: &Path) -> LintReport {
    let mut sink = Sink::default();

    // The union of files the scoped lints need, loaded once each.
    let mut scoped_files: Vec<String> = config::UNTRUSTED_FILES
        .iter()
        .map(|s| s.to_string())
        .collect();
    for glob in config::UNTRUSTED_FN_GLOBS {
        scoped_files.extend(walk_rs(root, glob));
    }
    for glob in config::ATOMIC_AUDIT_GLOBS {
        scoped_files.extend(walk_rs(root, glob));
    }
    for glob in config::UNSAFE_SCAN_GLOBS {
        scoped_files.extend(walk_rs(root, glob));
    }
    scoped_files.sort();
    scoped_files.dedup();

    let mut cache: BTreeMap<String, SourceFile> = BTreeMap::new();
    for rel in &scoped_files {
        if let Ok(raw) = std::fs::read_to_string(root.join(rel)) {
            cache.insert(rel.clone(), SourceFile::scan(rel, &raw));
        }
    }
    let files_scanned = cache.len();

    let mut wall: BTreeMap<&'static str, Duration> = BTreeMap::new();
    let timed = |wall: &mut BTreeMap<&'static str, Duration>,
                 lint: &'static str,
                 sink: &mut Sink,
                 f: &mut dyn FnMut(&mut Sink)| {
        let t = Instant::now();
        f(sink);
        *wall.entry(lint).or_default() += t.elapsed();
    };

    // L1/L4/L7 share one untrusted-surface scope decision per file.
    for file in cache.values() {
        let Some(scopes) = Scopes::untrusted(file) else {
            continue;
        };
        timed(&mut wall, "L1", &mut sink, &mut |s| {
            lints::panic_freedom::check(file, &scopes, s);
        });
        timed(&mut wall, "L4", &mut sink, &mut |s| {
            lints::arithmetic::check(file, &scopes, s);
        });
        timed(&mut wall, "L7", &mut sink, &mut |s| {
            lints::taint::check(file, &scopes, s);
        });
    }

    // L5 + L8 site collection over the atomic-audit globs; L6 over the
    // unsafe-scan globs.
    let mut sites = Vec::new();
    for (rel, file) in &cache {
        if config::ATOMIC_AUDIT_GLOBS
            .iter()
            .any(|g| rel.starts_with(g))
        {
            timed(&mut wall, "L5", &mut sink, &mut |s| {
                lints::atomics::check(file, s);
            });
            let t = Instant::now();
            sites.extend(lints::happens_before::collect(file, &mut sink));
            *wall.entry("L8").or_default() += t.elapsed();
        }
        if config::UNSAFE_SCAN_GLOBS.iter().any(|g| rel.starts_with(g)) {
            let allowlisted = config::UNSAFE_KERNEL_FILES.contains(&rel.as_str());
            timed(&mut wall, "L6", &mut sink, &mut |s| {
                lints::unsafe_kernels::check(file, allowlisted, s);
            });
        }
    }
    // L8's pairing pass is global: partners may live in other files.
    let t = Instant::now();
    lints::happens_before::check_global(&sites, &cache, &mut sink);
    *wall.entry("L8").or_default() += t.elapsed();

    timed(&mut wall, "L2", &mut sink, &mut |s| {
        lints::headers::check(root, s);
    });
    timed(&mut wall, "L3", &mut sink, &mut |s| {
        lints::format_consts::check(root, s);
    });

    sink.findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    sink.allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let per_lint = LINT_IDS
        .iter()
        .map(|&lint| LintStat {
            lint,
            findings: sink.findings.iter().filter(|f| f.lint == lint).count(),
            wall: wall.get(lint).copied().unwrap_or_default(),
        })
        .collect();
    LintReport {
        findings: sink.findings,
        allows: sink.allows,
        files_scanned,
        per_lint,
    }
}
