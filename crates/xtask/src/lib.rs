//! Repo-specific static analysis for the Grafite workspace.
//!
//! `cargo run -p xtask -- lint` runs six lexical lints (see
//! [`lints`]) that encode this repository's correctness contract: blob
//! loading is panic-free, length arithmetic on untrusted values is
//! checked, crate headers are uniform, the persistence constants agree
//! with the committed golden blobs, every atomic ordering in the
//! serving layer is justified, and `unsafe` is confined to the
//! allowlisted SIMD kernel module with per-block `// safety:`
//! justifications. The crate is dependency-free and fully
//! offline: plain `std::fs` walks plus a hand-rolled Rust lexer
//! ([`scan`]) that masks comments and strings before any rule looks at
//! the tokens.
//!
//! The analysis is deliberately *lexical*, not semantic: it trades a
//! small amount of precision (recovered via the counted
//! `// lint:allow(reason)` escape hatch) for zero build-time cost, zero
//! dependencies, and rules that are trivially auditable in
//! [`config`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lints;
pub mod scan;

use std::path::{Path, PathBuf};

use lints::{Finding, Scopes, Sink};
use scan::{AllowUse, SourceFile};

/// The outcome of a full lint pass.
#[derive(Default)]
pub struct LintReport {
    /// Violations, sorted by file then line. Non-empty ⇒ the run fails.
    pub findings: Vec<Finding>,
    /// Counted `lint:allow` suppressions, for the summary footer.
    pub allows: Vec<AllowUse>,
    /// How many files the scoped lints actually scanned.
    pub files_scanned: usize,
}

/// Locates the workspace root: the ancestor of this crate's manifest dir
/// that holds the workspace `Cargo.toml`.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Recursively collects `.rs` files under `root/prefix`, returned as
/// workspace-relative paths with `/` separators, sorted.
fn walk_rs(root: &Path, prefix: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(prefix)];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Runs all six lints from `root` and returns the combined report.
pub fn run_lints(root: &Path) -> LintReport {
    let mut sink = Sink::default();
    let mut files_scanned = 0usize;

    // L1 + L4 need per-file scopes; L5 needs the store tree; L6 sweeps
    // every source tree. Build the union of files to scan once, load
    // each once.
    let mut scoped_files: Vec<String> = config::UNTRUSTED_FILES
        .iter()
        .map(|s| s.to_string())
        .collect();
    for glob in config::UNTRUSTED_FN_GLOBS {
        scoped_files.extend(walk_rs(root, glob));
    }
    for glob in config::ATOMIC_AUDIT_GLOBS {
        scoped_files.extend(walk_rs(root, glob));
    }
    for glob in config::UNSAFE_SCAN_GLOBS {
        scoped_files.extend(walk_rs(root, glob));
    }
    scoped_files.sort();
    scoped_files.dedup();

    for rel in &scoped_files {
        let Ok(raw) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        files_scanned += 1;
        let file = SourceFile::scan(rel, &raw);

        // Scope for L1/L4: whole file if declared untrusted, else the
        // bodies of the untrusted-function family (if any).
        let in_fn_globs = config::UNTRUSTED_FN_GLOBS
            .iter()
            .any(|g| rel.starts_with(g));
        let scopes = if config::UNTRUSTED_FILES.contains(&rel.as_str()) {
            Some(Scopes::whole_file())
        } else if in_fn_globs {
            let s = Scopes::of_functions(&file, config::UNTRUSTED_FNS);
            (!s.is_empty()).then_some(s)
        } else {
            None
        };
        if let Some(scopes) = scopes {
            lints::panic_freedom::check(&file, &scopes, &mut sink);
            lints::arithmetic::check(&file, &scopes, &mut sink);
        }

        if config::ATOMIC_AUDIT_GLOBS
            .iter()
            .any(|g| rel.starts_with(g))
        {
            lints::atomics::check(&file, &mut sink);
        }

        if config::UNSAFE_SCAN_GLOBS.iter().any(|g| rel.starts_with(g)) {
            let allowlisted = config::UNSAFE_KERNEL_FILES.contains(&rel.as_str());
            lints::unsafe_kernels::check(&file, allowlisted, &mut sink);
        }
    }

    lints::headers::check(root, &mut sink);
    lints::format_consts::check(root, &mut sink);

    sink.findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    sink.allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintReport {
        findings: sink.findings,
        allows: sink.allows,
        files_scanned,
    }
}
