//! L4 — unchecked-arithmetic heuristic for untrusted-input scopes.
//!
//! A length or offset decoded from attacker-controllable bytes must never
//! flow through bare `+`, `*`, or `<<` (or their compound-assignment
//! forms): in release builds these wrap silently, and a wrapped length is
//! exactly how a crafted blob turns a bounds check into an out-of-bounds
//! read. Inside the untrusted scopes this lint flags those operators when
//! either operand *looks* length/offset-typed (see
//! [`crate::config::OFFSET_NAME_FRAGMENTS`]); the fix is `checked_*`,
//! `saturating_*`, or a `min`-style clamp — all of which this lint
//! recognizes as already safe. A deliberate exception carries
//! `// lint:allow(reason)`.
//!
//! Subtraction is deliberately out of scope (underflow is caught by the
//! hardened-profile CI run; most `a - b` sites sit behind an explicit
//! `a >= b` guard), as are `%` and `/` (cannot overflow on unsigned).

use crate::config::{
    OFFSET_NAME_EXACT, OFFSET_NAME_FRAGMENTS, SAFE_RESULT_METHODS, SAFE_RESULT_PREFIXES,
};
use crate::lints::{Scopes, Sink};
use crate::scan::{SourceFile, Token};

/// Whether a method name produces an overflow-safe result (shared table:
/// `min`/`clamp` plus the explicit-arithmetic prefixes in
/// [`crate::config`]).
fn is_safe_result(name: &str) -> bool {
    SAFE_RESULT_METHODS.contains(&name) || SAFE_RESULT_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// How an operand participates in the heuristic.
#[derive(PartialEq)]
enum Operand {
    /// Carries a length/offset-looking name: flaggable.
    Offsetish(String),
    /// Produced by a clamping method (`min`/`clamp`): the operation is
    /// already bounded, don't flag.
    Clamped,
    /// Anything else (literal, unrelated name, unknown).
    Neutral,
}

fn is_offsetish_name(name: &str) -> bool {
    // Uppercase-initial identifiers are types/variants (`Send`, `Vec`),
    // never length-typed locals; SCREAMING_CASE constants are compile-time
    // known, and if the *other* operand is untrusted it flags on its own.
    if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return false;
    }
    let lower = name.to_ascii_lowercase();
    OFFSET_NAME_EXACT.contains(&lower.as_str())
        || OFFSET_NAME_FRAGMENTS.iter().any(|f| lower.contains(f))
}

/// Classifies the operand ending at token `i` (exclusive of the operator).
fn left_operand(toks: &[Token], i: usize) -> Operand {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return Operand::Neutral;
    };
    // A lifetime (`'a + 'b` bounds) is never arithmetic.
    if i >= 2 && toks[i - 2].text == "'" {
        return Operand::Neutral;
    }
    match prev.text.as_str() {
        ")" => {
            // Walk back over the parenthesized group; the token before the
            // `(` names the producing function/method, if any.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                match toks[j].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                let Some(nj) = j.checked_sub(1) else {
                    return Operand::Neutral;
                };
                j = nj;
            }
            let before = j.checked_sub(1).and_then(|p| toks.get(p));
            match before {
                Some(t) if t.is_ident => {
                    if is_safe_result(&t.text) {
                        Operand::Clamped
                    } else if is_offsetish_name(&t.text) {
                        Operand::Offsetish(t.text.clone())
                    } else {
                        Operand::Neutral
                    }
                }
                // Plain parenthesized expression: look inside for any
                // offset-named identifier.
                _ => {
                    for t in &toks[j..i - 1] {
                        if t.is_ident && is_offsetish_name(&t.text) {
                            return Operand::Offsetish(t.text.clone());
                        }
                    }
                    Operand::Neutral
                }
            }
        }
        _ if prev.is_ident => {
            if is_offsetish_name(&prev.text) {
                Operand::Offsetish(prev.text.clone())
            } else {
                Operand::Neutral
            }
        }
        _ => Operand::Neutral,
    }
}

/// Classifies the operand starting at token `i` (exclusive of the operator).
fn right_operand(toks: &[Token], mut i: usize) -> Operand {
    // Skip leading `(`s and `&`s.
    while toks
        .get(i)
        .is_some_and(|t| t.text == "(" || t.text == "&" || t.text == "*")
    {
        i += 1;
    }
    let Some(first) = toks.get(i) else {
        return Operand::Neutral;
    };
    if first.text == "'" {
        return Operand::Neutral; // lifetime bound
    }
    if !first.is_ident {
        return Operand::Neutral; // literal or other
    }
    // Follow a field/method path: `self.pos`, `header.payload_words`,
    // `v.min(x)` — the final segment decides.
    let mut last = first.text.clone();
    let mut j = i + 1;
    while toks.get(j).is_some_and(|t| t.text == ".") && toks.get(j + 1).is_some_and(|t| t.is_ident)
    {
        last = toks[j + 1].text.clone();
        j += 2;
    }
    if is_safe_result(&last) {
        Operand::Clamped
    } else if is_offsetish_name(&last) {
        Operand::Offsetish(last)
    } else {
        Operand::Neutral
    }
}

/// Whether the operator token at `i` is a *binary* use (vs. unary deref /
/// generic bracket).
fn is_binary(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    (prev.is_ident && !crate::config::NON_INDEX_KEYWORDS.contains(&prev.text.as_str()))
        || prev.text == ")"
        || prev.text == "]"
        || prev.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Runs L4 over `file` within `scopes`.
pub fn check(file: &SourceFile, scopes: &Scopes, sink: &mut Sink) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        let op = t.text.as_str();
        let compound = matches!(op, "+=" | "*=" | "<<=");
        if !(compound || matches!(op, "+" | "*" | "<<")) {
            continue;
        }
        if !scopes.contains(file, t.line) {
            continue;
        }
        if !compound && !is_binary(toks, i) {
            continue;
        }
        let left = left_operand(toks, i);
        let right = right_operand(toks, i + 1);
        if left == Operand::Clamped || right == Operand::Clamped {
            continue;
        }
        let offender = match (&left, &right) {
            (Operand::Offsetish(n), _) | (_, Operand::Offsetish(n)) => n.clone(),
            _ => continue,
        };
        sink.emit(
            file,
            "L4",
            t.line,
            format!(
                "bare `{op}` on length/offset-typed `{offender}` in an untrusted-input scope: \
                 use checked_/saturating_ arithmetic or clamp first"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let f = SourceFile::scan("t.rs", src);
        let mut sink = Sink::default();
        check(&f, &Scopes::whole_file(), &mut sink);
        sink.findings.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn flags_bare_ops_on_lengths() {
        let found = run("fn f(len: usize, pos: usize) -> usize { len + pos * 8 }");
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn checked_and_clamped_forms_pass() {
        let found = run(
            "fn f(len: usize, cap: usize) -> Option<usize> { len.checked_add(cap)?.checked_mul(8) }",
        );
        assert!(found.is_empty(), "{found:?}");
        let found = run("fn g(n: usize) -> usize { n.min(1024) * 8 }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn neutral_names_pass() {
        let found = run("fn f(epsilon: f64, budget: f64) -> f64 { epsilon * budget + 2.0 }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn shifts_on_widths_flag() {
        let found = run("fn f(width: u32) -> u64 { 1u64 << width }");
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn compound_assign_flags() {
        let found = run("fn f(mut pos: usize) { pos += 1; }");
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn deref_and_trait_bounds_pass() {
        let found = run("fn f<T: Send + Sync>(x: &usize) -> usize { *x }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn field_paths_on_the_right_flag() {
        let found =
            run("struct H { payload_words: u64 }\nfn f(h: &H) -> u64 { 40 + h.payload_words }");
        assert_eq!(found.len(), 1, "{found:?}");
    }
}
