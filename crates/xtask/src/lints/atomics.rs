//! L5 — atomic-ordering audit in `grafite-store`.
//!
//! Every atomic `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` in
//! the serving layer must carry an `// ordering: …` comment on the same
//! line or within the few lines above, stating *why* that ordering is
//! sufficient (what it synchronizes with, or why no synchronization is
//! needed). Memory-ordering bugs do not show up in tests on x86; the
//! justification comment is the only reviewable artifact. `std::cmp` /
//! `std::collections` comparison `Ordering`s (`Less`/`Equal`/`Greater`)
//! are not atomic orderings and are ignored.

use crate::config::{ATOMIC_ORDERINGS, ORDERING_COMMENT_WINDOW, ORDERING_JUSTIFICATION};
use crate::lints::Sink;
use crate::scan::SourceFile;

/// Runs L5 over `file` (already filtered to the audit globs by the caller).
pub fn check(file: &SourceFile, sink: &mut Sink) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "Ordering" || file.in_test_code(t.line) {
            continue;
        }
        let variant = match (toks.get(i + 1), toks.get(i + 2)) {
            (Some(sep), Some(v)) if sep.text == "::" => &v.text,
            _ => continue,
        };
        if !ATOMIC_ORDERINGS.contains(&variant.as_str()) {
            continue;
        }
        let lo = t.line.saturating_sub(ORDERING_COMMENT_WINDOW);
        let justified = (lo..=t.line).any(|l| {
            file.comment_on(l)
                .is_some_and(|c| c.contains(ORDERING_JUSTIFICATION))
        });
        if !justified {
            sink.emit(
                file,
                "L5",
                t.line,
                format!(
                    "`Ordering::{variant}` without an `// ordering:` justification within \
                     {ORDERING_COMMENT_WINDOW} lines"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let f = SourceFile::scan("t.rs", src);
        let mut sink = Sink::default();
        check(&f, &mut sink);
        sink.findings.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn unjustified_ordering_flags() {
        let found =
            run("fn f(a: &std::sync::atomic::AtomicU64) -> u64 { a.load(Ordering::Relaxed) }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("Relaxed"));
    }

    #[test]
    fn justified_ordering_passes() {
        let found = run(
            "fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    // ordering: monotone counter, readers tolerate staleness\n    a.load(Ordering::Relaxed)\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let found = run("fn f(a: u32, b: u32) -> bool { a.cmp(&b) == Ordering::Less }");
        assert!(found.is_empty(), "{found:?}");
    }
}
