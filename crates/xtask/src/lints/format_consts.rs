//! L3 — format-constant consistency.
//!
//! The persistence contract lives in three places that can drift apart:
//! the constants in `crates/core/src/persist.rs` (`FORMAT_VERSION`,
//! `MIN_FORMAT_VERSION`, the `spec_id` table), the store manifest codec
//! (`STORE_FORMAT_VERSION`), and the committed golden blobs under
//! `tests/golden/`. This lint re-derives each side *statically* — the
//! constants lexically from source, the blob headers from their first 16
//! bytes — and cross-checks them, so that bumping `FORMAT_VERSION` without
//! regenerating `tests/golden/v{N}/`, or retiring v1 support while frozen
//! v1 blobs are still committed, fails before any test runs.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lints::Sink;
use crate::scan::SourceFile;

/// The blob magic, kept in sync with `grafite_core::persist::MAGIC`.
const BLOB_MAGIC: [u8; 8] = *b"GRAFILT\0";

/// Spec ids every golden set must cover: the paper's eleven-way registry.
const REQUIRED_SPEC_IDS: std::ops::RangeInclusive<u32> = 1..=11;

/// A `pub const NAME: u32 = N;` constant pulled lexically from source.
fn parse_u32_const(file: &SourceFile, name: &str) -> Option<u32> {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text == name
            && t.is_ident
            && toks.get(i + 1).is_some_and(|c| c.text == ":")
            && toks.get(i + 2).is_some_and(|ty| ty.text == "u32")
            && toks.get(i + 3).is_some_and(|e| e.text == "=")
        {
            return toks.get(i + 4).and_then(|v| v.text.parse().ok());
        }
    }
    None
}

/// Every `pub const NAME: u32 = N;` inside `pub mod spec_id { … }`.
fn parse_spec_table(file: &SourceFile) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    let toks = &file.tokens;
    // Find `mod spec_id {`, then collect consts until the matching `}`.
    let Some(open) = toks
        .iter()
        .enumerate()
        .find(|(i, t)| t.text == "spec_id" && *i > 0 && toks[i - 1].text == "mod")
        .and_then(|(i, _)| {
            toks[i..]
                .iter()
                .position(|t| t.text == "{")
                .map(|off| i + off)
        })
    else {
        return out;
    };
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "const" => {
                if let (Some(name), Some(val)) = (toks.get(i + 1), toks.get(i + 5)) {
                    if toks.get(i + 3).is_some_and(|ty| ty.text == "u32") {
                        if let Ok(v) = val.text.parse() {
                            out.insert(name.text.clone(), v);
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// One `name id fingerprint` line from a golden `manifest.txt`.
struct ManifestEntry {
    name: String,
    id: u32,
}

fn parse_manifest(text: &str) -> Vec<ManifestEntry> {
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            let name = parts.next()?.to_string();
            let id = parts.next()?.parse().ok()?;
            Some(ManifestEntry { name, id })
        })
        .collect()
}

/// The `(spec_id, version)` pair from a blob's second header word.
fn read_blob_head(path: &Path) -> Result<(u32, u32), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    let Some(head) = bytes.get(..16) else {
        return Err(format!(
            "only {} bytes, need 16 for the header",
            bytes.len()
        ));
    };
    if head[..8] != BLOB_MAGIC {
        return Err("magic is not GRAFILT".into());
    }
    let word1 = head
        .get(8..16)
        .map(|c| {
            c.iter()
                .rev()
                .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
        })
        .unwrap_or(0);
    Ok((word1 as u32, (word1 >> 32) as u32))
}

/// Cross-checks one golden directory against the spec table.
///
/// `expected_versions` is the inclusive range a blob's header version may
/// carry: exactly `FORMAT_VERSION` for the current set, the accepted
/// `MIN..=FORMAT` window for the frozen v1 set.
fn check_golden_dir(
    root: &Path,
    rel_dir: &str,
    expected_versions: std::ops::RangeInclusive<u32>,
    spec_table: &BTreeMap<String, u32>,
    sink: &mut Sink,
) {
    let manifest_rel = format!("{rel_dir}/manifest.txt");
    let manifest_text = match std::fs::read_to_string(root.join(&manifest_rel)) {
        Ok(t) => t,
        Err(e) => {
            sink.emit_unconditional(
                manifest_rel,
                "L3",
                1,
                format!(
                    "golden manifest missing ({e}): a FORMAT_VERSION bump requires regenerating \
                     this golden set (cargo test regenerates via GOLDEN_REGEN=1)"
                ),
            );
            return;
        }
    };
    let entries = parse_manifest(&manifest_text);
    let known_ids: Vec<u32> = spec_table.values().copied().collect();
    let mut seen_ids = Vec::new();
    for (lineno, entry) in entries.iter().enumerate() {
        seen_ids.push(entry.id);
        if !known_ids.contains(&entry.id) {
            sink.emit_unconditional(
                manifest_rel.clone(),
                "L3",
                lineno + 1,
                format!(
                    "`{}` declares spec id {} which is absent from persist.rs's spec_id table",
                    entry.name, entry.id
                ),
            );
        }
        let blob_rel = format!("{rel_dir}/{}.bin", entry.name);
        match read_blob_head(&root.join(&blob_rel)) {
            Err(why) => sink.emit_unconditional(blob_rel, "L3", 1, format!("golden blob {why}")),
            Ok((spec, version)) => {
                if spec != entry.id {
                    sink.emit_unconditional(
                        blob_rel.clone(),
                        "L3",
                        1,
                        format!(
                            "header says spec id {spec} but the manifest says {}",
                            entry.id
                        ),
                    );
                }
                if !expected_versions.contains(&version) {
                    sink.emit_unconditional(
                        blob_rel,
                        "L3",
                        1,
                        format!(
                            "header format version {version} is outside the accepted range \
                             {}..={} — regenerate the goldens or widen MIN/FORMAT_VERSION",
                            expected_versions.start(),
                            expected_versions.end()
                        ),
                    );
                }
            }
        }
    }
    for id in REQUIRED_SPEC_IDS {
        if !seen_ids.contains(&id) {
            sink.emit_unconditional(
                manifest_rel.clone(),
                "L3",
                1,
                format!("registry spec id {id} has no golden blob in this set"),
            );
        }
    }
}

/// Runs L3 from the workspace root.
pub fn check(root: &Path, sink: &mut Sink) {
    let persist_rel = "crates/core/src/persist.rs";
    let persist_src = match std::fs::read_to_string(root.join(persist_rel)) {
        Ok(s) => s,
        Err(e) => {
            sink.emit_unconditional(persist_rel.into(), "L3", 1, format!("unreadable: {e}"));
            return;
        }
    };
    let persist = SourceFile::scan(persist_rel, &persist_src);
    let Some(format_version) = parse_u32_const(&persist, "FORMAT_VERSION") else {
        sink.emit_unconditional(
            persist_rel.into(),
            "L3",
            1,
            "FORMAT_VERSION: u32 constant not found".into(),
        );
        return;
    };
    let Some(min_version) = parse_u32_const(&persist, "MIN_FORMAT_VERSION") else {
        sink.emit_unconditional(
            persist_rel.into(),
            "L3",
            1,
            "MIN_FORMAT_VERSION: u32 constant not found".into(),
        );
        return;
    };
    if min_version > format_version {
        sink.emit_unconditional(
            persist_rel.into(),
            "L3",
            1,
            format!("MIN_FORMAT_VERSION ({min_version}) exceeds FORMAT_VERSION ({format_version})"),
        );
    }
    let spec_table = parse_spec_table(&persist);
    if spec_table.is_empty() {
        sink.emit_unconditional(
            persist_rel.into(),
            "L3",
            1,
            "spec_id table not found or empty".into(),
        );
        return;
    }
    // Append-only table: ids must be unique.
    let mut ids: Vec<u32> = spec_table.values().copied().collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != spec_table.len() {
        sink.emit_unconditional(
            persist_rel.into(),
            "L3",
            1,
            "spec_id table contains duplicate ids (the table is append-only)".into(),
        );
    }

    // Current golden set: must exist for the *current* FORMAT_VERSION and
    // carry exactly that version in every header.
    check_golden_dir(
        root,
        &format!("tests/golden/v{format_version}"),
        format_version..=format_version,
        &spec_table,
        sink,
    );
    // Frozen v1 set at the golden root: still within the accepted window.
    // Retiring v1 support (bumping MIN_FORMAT_VERSION) while these blobs
    // remain committed fails here — delete or migrate them deliberately.
    check_golden_dir(
        root,
        "tests/golden",
        min_version..=format_version,
        &spec_table,
        sink,
    );

    // Store manifest codec: the version constant must exist and be ≥ 1.
    let store_rel = "crates/store/src/manifest.rs";
    match std::fs::read_to_string(root.join(store_rel)) {
        Err(e) => sink.emit_unconditional(store_rel.into(), "L3", 1, format!("unreadable: {e}")),
        Ok(src) => {
            let store = SourceFile::scan(store_rel, &src);
            match parse_u32_const(&store, "STORE_FORMAT_VERSION") {
                None => sink.emit_unconditional(
                    store_rel.into(),
                    "L3",
                    1,
                    "STORE_FORMAT_VERSION: u32 constant not found".into(),
                ),
                Some(0) => sink.emit_unconditional(
                    store_rel.into(),
                    "L3",
                    1,
                    "STORE_FORMAT_VERSION must be ≥ 1".into(),
                ),
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_const_parses() {
        let f = SourceFile::scan("t.rs", "pub const FORMAT_VERSION: u32 = 2;\n");
        assert_eq!(parse_u32_const(&f, "FORMAT_VERSION"), Some(2));
        assert_eq!(parse_u32_const(&f, "MISSING"), None);
    }

    #[test]
    fn spec_table_parses() {
        let src = "pub mod spec_id {\n    /// a\n    pub const A: u32 = 1;\n    pub const B: u32 = 32;\n}\n";
        let f = SourceFile::scan("t.rs", src);
        let table = parse_spec_table(&f);
        assert_eq!(table.get("A"), Some(&1));
        assert_eq!(table.get("B"), Some(&32));
    }

    #[test]
    fn manifest_lines_parse() {
        let entries = parse_manifest("grafite 1 0xdead\nbucketing 2 0xbeef\n");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].name, "bucketing");
        assert_eq!(entries[1].id, 2);
    }

    #[test]
    fn blob_head_decodes_spec_and_version() {
        let dir = std::env::temp_dir().join("xtask_l3_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BLOB_MAGIC);
        bytes.extend_from_slice(&((7u64) | (2u64 << 32)).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_blob_head(&path), Ok((7, 2)));
    }
}
