//! L8 — atomics happens-before checker.
//!
//! L5 proves every atomic ordering in the audited crates *has* an
//! `// ordering:` comment; L8 proves the comment *means something*. Each
//! comment must follow the machine-checkable grammar documented in
//! [`crate::config`]:
//!
//! ```text
//! // ordering: <class> [pairs-with <var>.<method>[, <var>.<method>…]] [; prose]
//! ```
//!
//! where `<class>` is one of [`crate::config::ORDERING_CLASSES`]. The
//! checker then verifies, *globally across the audited files*:
//!
//! - the declared class is consistent with the `Ordering::` variant at the
//!   site (`Relaxed-*` ⇔ `Relaxed`, `Release->Acquire` ⇔
//!   `Release`/`Acquire`, `AcqRel` ⇔ `AcqRel`; `SeqCst` has no class and
//!   needs a counted `lint:allow`),
//! - publish classes name at least one `pairs-with` partner and
//!   `Relaxed-*` classes name none (a declared publish edge can never run
//!   at `Relaxed`),
//! - every named partner resolves to a real atomic site on the *same*
//!   variable with a compatible ordering — a `Release` store must reach an
//!   `Acquire`-side load, and vice versa.
//!
//! Sites with *no* `// ordering:` comment at all are L5's findings; L8
//! stays silent on them so nothing double-reports.

use std::collections::BTreeMap;

use crate::config::{
    ATOMIC_OP_METHODS, ATOMIC_ORDERINGS, ORDERING_CLASSES, ORDERING_COMMENT_WINDOW,
    ORDERING_JUSTIFICATION, ORDERING_PAIRS_WITH,
};
use crate::lints::Sink;
use crate::scan::SourceFile;

/// A parsed `// ordering:` declaration.
#[derive(Clone, Debug)]
pub struct OrderingDecl {
    /// The declared class (one of [`ORDERING_CLASSES`]).
    pub class: String,
    /// `pairs-with` targets as `(variable, method)` pairs.
    pub pairs_with: Vec<(String, String)>,
}

/// One atomic operation site in an audited file.
#[derive(Clone, Debug)]
pub struct AtomicSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `Ordering::` token.
    pub line: usize,
    /// Receiver variable/field name (`published_version`, `stop`, …).
    pub var: String,
    /// Atomic method (`load`, `store`, `fetch_add`, …).
    pub method: String,
    /// The `Ordering::` variant at the site (first one for
    /// `compare_exchange`-family calls).
    pub ordering: String,
    /// The parsed declaration, if the comment was grammatical.
    pub decl: Option<OrderingDecl>,
}

impl AtomicSite {
    /// Whether this site can act as the release half of a publish edge.
    fn is_release_side(&self) -> bool {
        matches!(self.ordering.as_str(), "Release" | "AcqRel" | "SeqCst") && self.method != "load"
    }

    /// Whether this site can act as the acquire half of a publish edge.
    fn is_acquire_side(&self) -> bool {
        matches!(self.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst") && self.method != "store"
    }
}

/// The class the grammar requires for a given `Ordering::` variant, as a
/// human-readable expectation string (for diagnostics).
fn expected_classes(ordering: &str) -> &'static str {
    match ordering {
        "Relaxed" => "`Relaxed-counter` or `Relaxed-flag`",
        "Acquire" | "Release" => "`Release->Acquire`",
        "AcqRel" => "`AcqRel`",
        _ => "no class (SeqCst needs a counted lint:allow)",
    }
}

/// Whether `class` is consistent with the site's `Ordering::` variant.
fn class_matches(class: &str, ordering: &str) -> bool {
    match ordering {
        "Relaxed" => class.starts_with("Relaxed-"),
        "Acquire" | "Release" => class == "Release->Acquire",
        "AcqRel" => class == "AcqRel",
        _ => false,
    }
}

/// Parses the machine part of an `// ordering:` comment. Returns
/// `Err(reason)` when the text does not follow the grammar.
fn parse_decl(comment: &str) -> Result<OrderingDecl, String> {
    let after = comment
        .split_once(ORDERING_JUSTIFICATION)
        .map(|(_, rest)| rest)
        .unwrap_or("");
    // Everything after the first `;` is free prose.
    let machine = after.split(';').next().unwrap_or("").trim();
    let mut words = machine.split_whitespace();
    let class = words.next().unwrap_or("");
    if !ORDERING_CLASSES.contains(&class) {
        return Err(format!(
            "`{}` is not a declared class (expected one of {})",
            class,
            ORDERING_CLASSES.join(", ")
        ));
    }
    let rest: Vec<&str> = words.collect();
    let mut pairs_with = Vec::new();
    if !rest.is_empty() {
        if rest[0] != ORDERING_PAIRS_WITH {
            return Err(format!(
                "expected `{ORDERING_PAIRS_WITH}` after the class, found `{}`",
                rest[0]
            ));
        }
        for target in rest[1..].join(" ").split(',') {
            let target = target.trim();
            let Some((var, method)) = target.split_once('.') else {
                return Err(format!(
                    "pairing target `{target}` is not of the form `<var>.<method>`"
                ));
            };
            if var.is_empty() || !ATOMIC_OP_METHODS.contains(&method) {
                return Err(format!(
                    "pairing target `{target}` is not of the form `<var>.<method>`"
                ));
            }
            pairs_with.push((var.to_string(), method.to_string()));
        }
        if pairs_with.is_empty() {
            return Err(format!("`{ORDERING_PAIRS_WITH}` with no targets"));
        }
    }
    Ok(OrderingDecl {
        class: class.to_string(),
        pairs_with,
    })
}

/// Collects every atomic site in `file`, emitting grammar and
/// class-consistency violations as it goes. Well-formed sites are
/// returned for the global pairing pass ([`check_global`]).
pub fn collect(file: &SourceFile, sink: &mut Sink) -> Vec<AtomicSite> {
    let toks = &file.tokens;
    let mut sites = Vec::new();
    let mut last_call: Option<usize> = None;
    for (i, t) in toks.iter().enumerate() {
        if t.text != "Ordering" || file.in_test_code(t.line) {
            continue;
        }
        let variant = match (toks.get(i + 1), toks.get(i + 2)) {
            (Some(sep), Some(v)) if sep.text == "::" => v.text.clone(),
            _ => continue,
        };
        if !ATOMIC_ORDERINGS.contains(&variant.as_str()) {
            continue;
        }
        // Walk back to the enclosing atomic call: `<var> . <method> (`.
        let Some(j) = (0..i).rev().find(|&j| {
            ATOMIC_OP_METHODS.contains(&toks[j].text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.text == "(")
        }) else {
            continue; // fences etc.: L5 already demands a comment
        };
        // compare_exchange passes two orderings; count the call once.
        if last_call == Some(j) {
            continue;
        }
        last_call = Some(j);
        let var = match (toks.get(j.wrapping_sub(2)), toks.get(j.wrapping_sub(1))) {
            (Some(v), Some(dot)) if j >= 2 && dot.text == "." => v.text.clone(),
            _ => continue,
        };
        let method = toks[j].text.clone();

        // Nearest `// ordering:` comment at or above the site. Absence is
        // L5's finding, not ours.
        let lo = t.line.saturating_sub(ORDERING_COMMENT_WINDOW);
        let comment = (lo..=t.line).rev().find_map(|l| {
            file.comment_on(l)
                .filter(|c| c.contains(ORDERING_JUSTIFICATION))
        });
        let Some(comment) = comment else {
            sites.push(AtomicSite {
                file: file.rel.clone(),
                line: t.line,
                var,
                method,
                ordering: variant,
                decl: None,
            });
            continue;
        };

        let decl = match parse_decl(comment) {
            Ok(decl) => decl,
            Err(reason) => {
                sink.emit(
                    file,
                    "L8",
                    t.line,
                    format!("`// ordering:` comment does not parse: {reason}"),
                );
                continue;
            }
        };
        if !class_matches(&decl.class, &variant) {
            sink.emit(
                file,
                "L8",
                t.line,
                format!(
                    "class `{}` does not admit `Ordering::{variant}` here (expected {})",
                    decl.class,
                    expected_classes(&variant)
                ),
            );
            continue;
        }
        let is_publish = decl.class == "Release->Acquire" || decl.class == "AcqRel";
        if is_publish && decl.pairs_with.is_empty() {
            sink.emit(
                file,
                "L8",
                t.line,
                format!(
                    "publish class `{}` must name its partner: `{ORDERING_PAIRS_WITH} \
                     <var>.<method>`",
                    decl.class
                ),
            );
            continue;
        }
        if !is_publish && !decl.pairs_with.is_empty() {
            sink.emit(
                file,
                "L8",
                t.line,
                format!(
                    "class `{}` declares no synchronization, so `{ORDERING_PAIRS_WITH}` is \
                     contradictory — use `Release->Acquire` if this is a publish edge",
                    decl.class
                ),
            );
            continue;
        }
        sites.push(AtomicSite {
            file: file.rel.clone(),
            line: t.line,
            var,
            method,
            ordering: variant,
            decl: Some(decl),
        });
    }
    sites
}

/// Emits an L8 finding at `rel:line`, honouring `lint:allow` when the
/// source file is available.
fn emit_at(
    sink: &mut Sink,
    files: &BTreeMap<String, SourceFile>,
    rel: &str,
    line: usize,
    message: String,
) {
    match files.get(rel) {
        Some(f) => sink.emit(f, "L8", line, message),
        None => sink.emit_unconditional(rel.to_string(), "L8", line, message),
    }
}

/// The global pairing pass over every collected site: each `pairs-with`
/// target must resolve to a live site of the same variable whose ordering
/// completes the happens-before edge.
pub fn check_global(sites: &[AtomicSite], files: &BTreeMap<String, SourceFile>, sink: &mut Sink) {
    for site in sites {
        let Some(decl) = &site.decl else { continue };
        for (var, method) in &decl.pairs_with {
            if var != &site.var {
                emit_at(
                    sink,
                    files,
                    &site.file,
                    site.line,
                    format!(
                        "`{}.{}` pairs across atomics: a happens-before edge must stay on \
                         `{}` (one atomic, one protocol)",
                        var, method, site.var
                    ),
                );
                continue;
            }
            let partner = sites.iter().find(|p| {
                &p.var == var
                    && &p.method == method
                    && if site.is_release_side() {
                        p.is_acquire_side()
                    } else {
                        p.is_release_side()
                    }
            });
            if partner.is_none() {
                let want = if site.is_release_side() {
                    "Acquire-side"
                } else {
                    "Release-side"
                };
                emit_at(
                    sink,
                    files,
                    &site.file,
                    site.line,
                    format!(
                        "`Ordering::{}` {} of `{}` pairs-with `{var}.{method}`, but no {want} \
                         `{var}.{method}` site exists in the audited tree",
                        site.ordering, site.method, site.var
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> (Vec<String>, Vec<AtomicSite>) {
        let mut files = BTreeMap::new();
        for (rel, src) in sources {
            files.insert(rel.to_string(), SourceFile::scan(rel, src));
        }
        let mut sink = Sink::default();
        let mut sites = Vec::new();
        for f in files.values() {
            sites.extend(collect(f, &mut sink));
        }
        check_global(&sites, &files, &mut sink);
        let found = sink.findings.iter().map(|f| f.to_string()).collect();
        (found, sites)
    }

    #[test]
    fn relaxed_counter_passes() {
        let (found, sites) = run(&[(
            "a.rs",
            "fn f(c: &C) {\n    // ordering: Relaxed-counter; monotone event count\n    c.hits.fetch_add(1, Ordering::Relaxed);\n}",
        )]);
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].var, "hits");
        assert_eq!(sites[0].method, "fetch_add");
    }

    #[test]
    fn prose_comment_fails_the_grammar() {
        let (found, _) = run(&[(
            "a.rs",
            "fn f(c: &C) {\n    // ordering: monotone counter, readers tolerate staleness\n    c.hits.fetch_add(1, Ordering::Relaxed);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("does not parse"), "{found:?}");
    }

    #[test]
    fn release_acquire_pair_resolves_across_files() {
        let (found, _) = run(&[
            (
                "w.rs",
                "fn publish(s: &S) {\n    // ordering: Release->Acquire pairs-with version.load; publishes the swap\n    s.version.store(1, Ordering::Release);\n}",
            ),
            (
                "r.rs",
                "fn observe(s: &S) -> u64 {\n    // ordering: Release->Acquire pairs-with version.store; sees the swap\n    s.version.load(Ordering::Acquire)\n}",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unpaired_release_flags() {
        let (found, _) = run(&[(
            "w.rs",
            "fn publish(s: &S) {\n    // ordering: Release->Acquire pairs-with version.load\n    s.version.store(1, Ordering::Release);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("no Acquire-side"), "{found:?}");
    }

    #[test]
    fn publish_class_requires_a_partner() {
        let (found, _) = run(&[(
            "w.rs",
            "fn publish(s: &S) {\n    // ordering: Release->Acquire; publishes the swap\n    s.version.store(1, Ordering::Release);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("must name its partner"), "{found:?}");
    }

    #[test]
    fn relaxed_in_a_declared_publish_edge_flags() {
        let (found, _) = run(&[(
            "w.rs",
            "fn publish(s: &S) {\n    // ordering: Release->Acquire pairs-with version.load\n    s.version.store(1, Ordering::Relaxed);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("does not admit"), "{found:?}");
    }

    #[test]
    fn relaxed_class_forbids_pairs_with() {
        let (found, _) = run(&[(
            "w.rs",
            "fn f(c: &C) {\n    // ordering: Relaxed-counter pairs-with hits.load\n    c.hits.fetch_add(1, Ordering::Relaxed);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("contradictory"), "{found:?}");
    }

    #[test]
    fn cross_variable_pairing_flags() {
        let (found, _) = run(&[(
            "w.rs",
            "fn publish(s: &S) {\n    // ordering: Release->Acquire pairs-with other.load\n    s.version.store(1, Ordering::Release);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("one atomic, one protocol"), "{found:?}");
    }

    #[test]
    fn seqcst_has_no_class() {
        let (found, _) = run(&[(
            "w.rs",
            "fn f(s: &S) {\n    // ordering: AcqRel pairs-with version.load\n    s.version.swap(1, Ordering::SeqCst);\n}",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("does not admit"), "{found:?}");
    }

    #[test]
    fn compare_exchange_counts_one_site() {
        let (found, sites) = run(&[
            (
                "w.rs",
                "fn f(s: &S) {\n    // ordering: AcqRel pairs-with version.load; rmw publish\n    let _ = s.version.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n}",
            ),
            (
                "r.rs",
                "fn g(s: &S) -> u64 {\n    // ordering: Release->Acquire pairs-with version.compare_exchange\n    s.version.load(Ordering::Acquire)\n}",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(
            sites
                .iter()
                .filter(|s| s.method == "compare_exchange")
                .count(),
            1
        );
    }

    #[test]
    fn missing_comment_is_left_to_l5() {
        let (found, sites) = run(&[(
            "a.rs",
            "fn f(c: &C) {\n    c.hits.fetch_add(1, Ordering::Relaxed);\n}",
        )]);
        assert!(found.is_empty(), "L5 owns absent comments: {found:?}");
        assert_eq!(sites.len(), 1);
        assert!(sites[0].decl.is_none());
    }

    #[test]
    fn lint_allow_suppresses_grammar_findings() {
        let src = "fn f(s: &S) {\n    // ordering: legacy prose justification\n    // lint:allow(migrating this module to the grammar next release)\n    s.version.swap(1, Ordering::SeqCst);\n}";
        let files: BTreeMap<String, SourceFile> =
            [("a.rs".to_string(), SourceFile::scan("a.rs", src))].into();
        let mut sink = Sink::default();
        for f in files.values() {
            collect(f, &mut sink);
        }
        assert!(sink.findings.is_empty(), "{:?}", sink.findings);
        assert_eq!(sink.allows.len(), 1);
    }
}
