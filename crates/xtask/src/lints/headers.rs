//! L2 — crate-header conformance.
//!
//! Every workspace member (and the root meta-crate) must open with the
//! agreed header block: `#![forbid(unsafe_code)]` — memory safety is not a
//! per-crate choice — and `#![warn(missing_docs)]`. The crates listed in
//! [`crate::config::UNSAFE_GATED_CRATES`] may spell the first one
//! `#![deny(unsafe_code)]` instead, because their allowlisted SIMD kernel
//! module opts back in (`forbid` cannot be overridden per-module); L6
//! polices the actual `unsafe` tokens there. The check runs over the
//! masked source, so a doc comment *mentioning* the attributes does not
//! satisfy it.

use std::path::Path;

use crate::config::{DENY_UNSAFE_HEADER, REQUIRED_HEADERS, UNSAFE_GATED_CRATES};
use crate::lints::Sink;
use crate::scan::SourceFile;

/// Extracts the `members = [...]` list from the root `Cargo.toml` text,
/// plus `"."` for the root package itself.
pub fn workspace_members(cargo_toml: &str) -> Vec<String> {
    let mut members = vec![".".to_string()];
    let Some(at) = cargo_toml.find("members = [") else {
        return members;
    };
    let rest = &cargo_toml[at..];
    let Some(close) = rest.find(']') else {
        return members;
    };
    for piece in rest[..close].split('"').skip(1).step_by(2) {
        if !members.iter().any(|m| m == piece) {
            members.push(piece.to_string());
        }
    }
    members
}

/// Runs L2 over every member's crate roots.
pub fn check(root: &Path, sink: &mut Sink) {
    let cargo_toml = match std::fs::read_to_string(root.join("Cargo.toml")) {
        Ok(t) => t,
        Err(e) => {
            sink.emit_unconditional(
                "Cargo.toml".into(),
                "L2",
                1,
                format!("workspace manifest unreadable: {e}"),
            );
            return;
        }
    };
    for member in workspace_members(&cargo_toml) {
        let dir = if member == "." {
            root.to_path_buf()
        } else {
            root.join(&member)
        };
        let mut any_root = false;
        for crate_root in ["src/lib.rs", "src/main.rs"] {
            let path = dir.join(crate_root);
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue;
            };
            any_root = true;
            let rel = if member == "." {
                crate_root.to_string()
            } else {
                format!("{member}/{crate_root}")
            };
            let scanned = SourceFile::scan(&rel, &raw);
            let gated = UNSAFE_GATED_CRATES.contains(&member.as_str());
            for required in REQUIRED_HEADERS {
                let satisfied = scanned.masked.contains(required)
                    || (gated
                        && required.contains("unsafe_code")
                        && scanned.masked.contains(DENY_UNSAFE_HEADER));
                if !satisfied {
                    let hint = if gated && required.contains("unsafe_code") {
                        format!("`{required}` (or `{DENY_UNSAFE_HEADER}` for this gated crate)")
                    } else {
                        format!("`{required}`")
                    };
                    sink.emit_unconditional(
                        rel.clone(),
                        "L2",
                        1,
                        format!("crate root is missing the {hint} header"),
                    );
                }
            }
        }
        if !any_root {
            sink.emit_unconditional(
                format!("{member}/src"),
                "L2",
                1,
                "workspace member has no src/lib.rs or src/main.rs to check".into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse() {
        let toml = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"shims/b\",\n]\n";
        assert_eq!(workspace_members(toml), vec![".", "crates/a", "shims/b"]);
    }

    #[test]
    fn doc_comment_mention_does_not_satisfy() {
        let raw = "//! says #![forbid(unsafe_code)] in prose only\nfn x() {}\n";
        let scanned = SourceFile::scan("t.rs", raw);
        assert!(!scanned.masked.contains("#![forbid(unsafe_code)]"));
    }
}
