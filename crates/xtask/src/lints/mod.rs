//! The eight repo-specific lints behind `cargo run -p xtask -- lint`.
//!
//! | id | name | what it proves |
//! |---|---|---|
//! | L1 | panic-freedom | no `unwrap`/`expect`/`panic!`-family macro/bare indexing in untrusted-input scopes |
//! | L2 | crate-header conformance | every workspace crate forbids `unsafe_code` (gated crates may deny) and warns on `missing_docs` |
//! | L3 | format-constant consistency | version/spec-id constants agree with the committed golden blobs |
//! | L4 | unchecked arithmetic | no bare `+`/`*`/`<<` on length/offset-typed values in untrusted scopes |
//! | L5 | atomic-ordering audit | every atomic `Ordering::` in the audited crates carries an `// ordering:` justification |
//! | L6 | unsafe-kernel confinement | `unsafe` appears only in the allowlisted SIMD kernel module, every block `// safety:`-justified |
//! | L7 | dataflow taint | no untrusted value reaches an allocation size / index / shift / raw read without a guard |
//! | L8 | happens-before pairing | every `// ordering:` comment parses under the grammar and every `Release` names a live `Acquire` partner |
//!
//! L1, L4, L7, and L8 honour the `// lint:allow(reason)` escape hatch
//! (same line or the line directly above); suppressions are counted and
//! reported, never silent.

pub mod arithmetic;
pub mod atomics;
pub mod format_consts;
pub mod happens_before;
pub mod headers;
pub mod panic_freedom;
pub mod taint;
pub mod unsafe_kernels;

use crate::scan::{AllowUse, SourceFile};

/// One lint violation, pointing at `file:line`.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lint id (`"L1"`…`"L6"`).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (1 for file-level findings).
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Sink shared by every lint: routes each candidate violation either to
/// the findings (fail the build) or, when a `// lint:allow(reason)` covers
/// its line, to the counted suppressions.
#[derive(Default)]
pub struct Sink {
    /// Violations that will fail the run.
    pub findings: Vec<Finding>,
    /// Suppressed-and-counted `lint:allow` uses.
    pub allows: Vec<AllowUse>,
}

impl Sink {
    /// Reports a violation in `file` unless an allow comment covers it.
    pub fn emit(&mut self, file: &SourceFile, lint: &'static str, line: usize, message: String) {
        if let Some(reason) = file.allow_reason(line) {
            self.allows.push(AllowUse {
                file: file.rel.clone(),
                line,
                lint,
                reason,
            });
        } else {
            self.findings.push(Finding {
                lint,
                file: file.rel.clone(),
                line,
                message,
            });
        }
    }

    /// Reports a violation with no allow-comment escape (structural lints:
    /// L2/L3 conformance cannot be waived inline).
    pub fn emit_unconditional(
        &mut self,
        file: String,
        lint: &'static str,
        line: usize,
        message: String,
    ) {
        self.findings.push(Finding {
            lint,
            file,
            line,
            message,
        });
    }
}

/// Inclusive line ranges a scoped lint applies to.
#[derive(Clone, Debug)]
pub struct Scopes(pub Vec<(usize, usize)>);

impl Scopes {
    /// A scope covering the whole file.
    pub fn whole_file() -> Self {
        Scopes(vec![(1, usize::MAX)])
    }

    /// The union of the extents of the named functions in `file`.
    pub fn of_functions(file: &SourceFile, names: &[&str]) -> Self {
        let mut v = Vec::new();
        for name in names {
            v.extend(file.fn_extents(name));
        }
        Scopes(v)
    }

    /// The shared untrusted-surface scope for `file`, from the single
    /// policy table in [`crate::config`]: the whole file when its path is
    /// in `UNTRUSTED_FILES`, the bodies of the `UNTRUSTED_FNS` family when
    /// it sits under `UNTRUSTED_FN_GLOBS`, `None` otherwise. L1, L4, and
    /// L7 all scope through this one decision.
    pub fn untrusted(file: &SourceFile) -> Option<Scopes> {
        let rel = file.rel.as_str();
        if crate::config::UNTRUSTED_FILES.contains(&rel) {
            return Some(Scopes::whole_file());
        }
        if crate::config::UNTRUSTED_FN_GLOBS
            .iter()
            .any(|g| rel.starts_with(g))
        {
            let s = Scopes::of_functions(file, crate::config::UNTRUSTED_FNS);
            return (!s.is_empty()).then_some(s);
        }
        None
    }

    /// Whether `line` is in scope and outside `#[cfg(test)]` code.
    pub fn contains(&self, file: &SourceFile, line: usize) -> bool {
        !file.in_test_code(line) && self.0.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether any scope exists at all.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both scoped lints must consume the one untrusted-surface table:
    /// a violation inside a `read_from` body under a fn-glob path flags
    /// for L1 and L4 through the *same* `Scopes::untrusted` decision,
    /// while the identical code outside that scope stays silent.
    #[test]
    fn panic_freedom_and_arithmetic_share_the_untrusted_table() {
        let src = "\
pub fn read_from(v: &[u64], len: usize) -> u64 {
    let x = v[len + 1];
    x
}
pub fn trusted_helper(v: &[u64], len: usize) -> u64 {
    let x = v[len + 1];
    x
}
";
        // A path under UNTRUSTED_FN_GLOBS but not in UNTRUSTED_FILES.
        let file = SourceFile::scan("crates/core/src/synthetic.rs", src);
        let scopes = Scopes::untrusted(&file).expect("read_from body must be in scope");
        let mut sink = Sink::default();
        crate::lints::panic_freedom::check(&file, &scopes, &mut sink);
        crate::lints::arithmetic::check(&file, &scopes, &mut sink);
        let lines: Vec<(&'static str, usize)> =
            sink.findings.iter().map(|f| (f.lint, f.line)).collect();
        assert!(lines.contains(&("L1", 2)), "{lines:?}");
        assert!(lines.contains(&("L4", 2)), "{lines:?}");
        assert!(
            lines.iter().all(|&(_, l)| l == 2),
            "the trusted twin must stay out of scope: {lines:?}"
        );

        // A path outside every glob gets no scope at all.
        let outside = SourceFile::scan("shims/proptest/src/synthetic.rs", src);
        assert!(Scopes::untrusted(&outside).is_none());
    }

    /// Whole-file scope comes from the same table's UNTRUSTED_FILES list.
    #[test]
    fn untrusted_files_scope_whole_file() {
        let file = SourceFile::scan("crates/server/src/protocol.rs", "fn any() {}\n");
        let scopes = Scopes::untrusted(&file).expect("listed file must be whole-file scoped");
        assert!(scopes.contains(&file, 1));
    }
}
