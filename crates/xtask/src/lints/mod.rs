//! The six repo-specific lints behind `cargo run -p xtask -- lint`.
//!
//! | id | name | what it proves |
//! |---|---|---|
//! | L1 | panic-freedom | no `unwrap`/`expect`/`panic!`-family macro/bare indexing in untrusted-input scopes |
//! | L2 | crate-header conformance | every workspace crate forbids `unsafe_code` (gated crates may deny) and warns on `missing_docs` |
//! | L3 | format-constant consistency | version/spec-id constants agree with the committed golden blobs |
//! | L4 | unchecked arithmetic | no bare `+`/`*`/`<<` on length/offset-typed values in untrusted scopes |
//! | L5 | atomic-ordering audit | every atomic `Ordering::` in `grafite-store` carries an `// ordering:` justification |
//! | L6 | unsafe-kernel confinement | `unsafe` appears only in the allowlisted SIMD kernel module, every block `// safety:`-justified |
//!
//! L1 and L4 honour the `// lint:allow(reason)` escape hatch (same line or
//! the line directly above); suppressions are counted and reported, never
//! silent.

pub mod arithmetic;
pub mod atomics;
pub mod format_consts;
pub mod headers;
pub mod panic_freedom;
pub mod unsafe_kernels;

use crate::scan::{AllowUse, SourceFile};

/// One lint violation, pointing at `file:line`.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lint id (`"L1"`…`"L6"`).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (1 for file-level findings).
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Sink shared by every lint: routes each candidate violation either to
/// the findings (fail the build) or, when a `// lint:allow(reason)` covers
/// its line, to the counted suppressions.
#[derive(Default)]
pub struct Sink {
    /// Violations that will fail the run.
    pub findings: Vec<Finding>,
    /// Suppressed-and-counted `lint:allow` uses.
    pub allows: Vec<AllowUse>,
}

impl Sink {
    /// Reports a violation in `file` unless an allow comment covers it.
    pub fn emit(&mut self, file: &SourceFile, lint: &'static str, line: usize, message: String) {
        if let Some(reason) = file.allow_reason(line) {
            self.allows.push(AllowUse {
                file: file.rel.clone(),
                line,
                lint,
                reason,
            });
        } else {
            self.findings.push(Finding {
                lint,
                file: file.rel.clone(),
                line,
                message,
            });
        }
    }

    /// Reports a violation with no allow-comment escape (structural lints:
    /// L2/L3 conformance cannot be waived inline).
    pub fn emit_unconditional(
        &mut self,
        file: String,
        lint: &'static str,
        line: usize,
        message: String,
    ) {
        self.findings.push(Finding {
            lint,
            file,
            line,
            message,
        });
    }
}

/// Inclusive line ranges a scoped lint applies to.
#[derive(Clone, Debug)]
pub struct Scopes(pub Vec<(usize, usize)>);

impl Scopes {
    /// A scope covering the whole file.
    pub fn whole_file() -> Self {
        Scopes(vec![(1, usize::MAX)])
    }

    /// The union of the extents of the named functions in `file`.
    pub fn of_functions(file: &SourceFile, names: &[&str]) -> Self {
        let mut v = Vec::new();
        for name in names {
            v.extend(file.fn_extents(name));
        }
        Scopes(v)
    }

    /// Whether `line` is in scope and outside `#[cfg(test)]` code.
    pub fn contains(&self, file: &SourceFile, line: usize) -> bool {
        !file.in_test_code(line) && self.0.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether any scope exists at all.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}
