//! L1 — panic-freedom in untrusted-input scopes.
//!
//! Inside the declared untrusted scopes (see [`crate::config`]), loading
//! attacker-controllable bytes must fail with typed errors, never panic.
//! This lint denies, lexically:
//!
//! * `.unwrap()` and `.expect(…)` (`unwrap_or*` / `expect_err` and friends
//!   are distinct tokens and stay legal);
//! * the panicking macros `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`
//!   (`debug_assert*!` stays legal: it expresses an internal invariant and
//!   compiles out of release builds — the hardened CI profile arms it);
//! * bare index/slice expressions `x[…]` — including `[..]`/`[a..b]` range
//!   forms — which must become `get`/`get_mut` with a typed error (or carry
//!   a `// lint:allow(reason)` stating why they cannot fail).

use crate::config::NON_INDEX_KEYWORDS;
use crate::lints::{Scopes, Sink};
use crate::scan::SourceFile;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs L1 over `file` within `scopes`.
pub fn check(file: &SourceFile, scopes: &Scopes, sink: &mut Sink) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !scopes.contains(file, t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(`
        if t.is_ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            sink.emit(
                file,
                "L1",
                t.line,
                format!(
                    "`.{}()` in an untrusted-input scope: return a typed DecodeError/FilterError instead",
                    t.text
                ),
            );
            continue;
        }
        // Panicking macros.
        if t.is_ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            sink.emit(
                file,
                "L1",
                t.line,
                format!(
                    "`{}!` in an untrusted-input scope: corrupt input must surface as a typed error",
                    t.text
                ),
            );
            continue;
        }
        // Bare indexing: `expr[` where expr ends in an identifier, `)`,
        // `]`, or `?`. Attributes (`#[…]`), macro bangs (`vec![…]`), slice
        // patterns (`let [a, b] = …`), and array types (`[u64; N]`) all
        // have a different preceding token and pass.
        if t.text == "[" && i > 0 {
            let prev = &toks[i - 1];
            // `&'a [u64]` is a lifetime + slice type, not an index.
            let lifetime = i >= 2 && toks[i - 2].text == "'";
            let indexes = !lifetime
                && ((prev.is_ident && !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()))
                    || prev.text == ")"
                    || prev.text == "]"
                    || prev.text == "?");
            if indexes {
                sink.emit(
                    file,
                    "L1",
                    t.line,
                    format!(
                        "bare index/slice `{}[…]` in an untrusted-input scope: use `.get(…)` and return a typed error",
                        if prev.is_ident { prev.text.as_str() } else { "expr" }
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<String>, usize) {
        let f = SourceFile::scan("t.rs", src);
        let mut sink = Sink::default();
        check(&f, &Scopes::whole_file(), &mut sink);
        (
            sink.findings.iter().map(|f| f.to_string()).collect(),
            sink.allows.len(),
        )
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let (found, _) = run("fn f(x: Option<u8>) { x.unwrap(); x.expect(\"no\"); panic!(); }");
        assert_eq!(found.len(), 3);
        assert!(found[0].contains("L1"));
    }

    #[test]
    fn unwrap_or_is_legal() {
        let (found, _) = run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).saturating_add(1) }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn debug_assert_is_legal_assert_is_not() {
        let (found, _) = run("fn f(a: usize) { debug_assert!(a > 0); assert!(a > 0); }");
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("`assert!`"));
    }

    #[test]
    fn indexing_flags_but_patterns_do_not() {
        let (found, _) = run(
            "fn f(v: &[u8]) -> u8 { let [a, b] = [1u8, 2]; let w: [u8; 2] = [a, b]; v[0] + w[1] }",
        );
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        let (found, _) = run("struct C<'a> { words: &'a [u64] }\nfn f<'b>(x: &'b [u8]) {}");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn allows_suppress_and_count() {
        let (found, allows) = run(
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(v always has one element here)\n    v[0]\n}",
        );
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(allows, 1);
    }

    #[test]
    fn test_modules_are_exempt() {
        let (found, _) =
            run("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}");
        assert!(found.is_empty(), "{found:?}");
    }
}
