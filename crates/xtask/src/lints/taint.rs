//! L7 — dataflow taint analysis for untrusted-input scopes.
//!
//! L4 asks "does this *name* look like a length?"; L7 asks "did this
//! *value* come from attacker bytes?". Sources are the word-stream and
//! frame-payload decoders plus attacker-named parameters
//! ([`crate::config::TAINT_SOURCE_CALLS`] /
//! [`crate::config::TAINT_SOURCE_PARAMS`]); sinks are allocation sizes,
//! `vec![_; n]` lengths, slice indices, raw-read offsets, and shift
//! amounts; taint clears only through `checked_*`/`saturating_*`
//! arithmetic, `min`/`clamp`, or an explicit bounds comparison (which
//! vouches for the whole definition chain it compares). Scoping is the
//! same single untrusted-surface table L1/L4 use
//! ([`crate::lints::Scopes::untrusted`]); `// lint:allow(reason)` applies
//! as everywhere else.

use std::collections::BTreeSet;

use crate::dataflow;
use crate::lints::{Scopes, Sink};
use crate::scan::SourceFile;

/// Runs L7 over `file` within `scopes`.
pub fn check(file: &SourceFile, scopes: &Scopes, sink: &mut Sink) {
    // Nested functions appear both standalone and inside their parent's
    // span; dedupe findings by (line, message) so each fires once.
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for span in file.fn_spans() {
        if !scopes.contains(file, span.lines.0) {
            continue;
        }
        let flow = dataflow::parse_fn(file, &span);
        for finding in dataflow::analyze(&flow) {
            if file.in_test_code(finding.line) {
                continue;
            }
            if seen.insert((finding.line, finding.message.clone())) {
                sink.emit(
                    file,
                    "L7",
                    finding.line,
                    format!("in `{}`: {}", span.name, finding.message),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let f = SourceFile::scan("t.rs", src);
        let mut sink = Sink::default();
        check(&f, &Scopes::whole_file(), &mut sink);
        sink.findings.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn provenance_beats_name_heuristics() {
        // `quota` has no length-ish name, so L4 is blind to it; L7 tracks
        // the value from the decode call to the allocation.
        let found = run(
            "fn decode(payload: &[u8]) -> Vec<u8> {\n    let quota = u32_at(payload, 0).unwrap_or(0) as usize;\n    Vec::with_capacity(quota)\n}",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("[L7]"), "{found:?}");
        assert!(found[0].starts_with("t.rs:3:"), "{found:?}");
    }

    #[test]
    fn guarded_flow_is_silent() {
        let found = run(
            "fn decode(payload: &[u8]) -> Vec<u8> {\n    let n = u32_at(payload, 0).unwrap_or(0) as usize;\n    if n > 4096 {\n        return Vec::new();\n    }\n    Vec::with_capacity(n)\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn lint_allow_suppresses_and_counts() {
        let src = "fn decode(payload: &[u8]) -> Vec<u8> {\n    let n = u32_at(payload, 0).unwrap_or(0) as usize;\n    // lint:allow(capacity is a hint, not a hard allocation)\n    Vec::with_capacity(n)\n}";
        let f = SourceFile::scan("t.rs", src);
        let mut sink = Sink::default();
        check(&f, &Scopes::whole_file(), &mut sink);
        assert!(sink.findings.is_empty(), "{:?}", sink.findings);
        assert_eq!(sink.allows.len(), 1);
    }

    #[test]
    fn test_code_is_skipped() {
        let found = run(
            "#[cfg(test)]\nmod tests {\n    fn decode(payload: &[u8]) -> Vec<u8> {\n        let n = u32_at(payload, 0).unwrap_or(0) as usize;\n        Vec::with_capacity(n)\n    }\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
