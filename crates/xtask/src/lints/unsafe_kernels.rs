//! L6 — unsafe-kernel confinement.
//!
//! The workspace is `unsafe`-free by policy (L2), with exactly one
//! carve-out: the SIMD kernel module(s) listed in
//! [`crate::config::UNSAFE_KERNEL_FILES`]. This lint makes the carve-out
//! auditable from both sides:
//!
//! * an `unsafe` token in any swept file **outside** the allowlist is a
//!   violation outright — the allowlist is a config change, reviewed as
//!   such, never an inline waiver;
//! * inside an allowlisted file, every `unsafe` token must carry a
//!   `// safety: …` justification on the same line or within the few
//!   lines above (mirroring L5's `// ordering:` discipline), stating the
//!   invariant that makes the block sound — the CPU-feature check, the
//!   bounds argument for a raw load or gather.
//!
//! The scan runs over lexed tokens of masked source, so `unsafe` in
//! comments, strings, or doc text never matches, and the module-level
//! `#![allow(unsafe_code)]` attribute (identifier `unsafe_code`) is a
//! different token and is ignored.

use crate::config::{SAFETY_COMMENT_WINDOW, SAFETY_JUSTIFICATION};
use crate::lints::Sink;
use crate::scan::SourceFile;

/// Runs L6 over `file` (already filtered to the sweep globs by the
/// caller). `allowlisted` says whether the file may contain justified
/// `unsafe` at all.
pub fn check(file: &SourceFile, allowlisted: bool, sink: &mut Sink) {
    for t in &file.tokens {
        if t.text != "unsafe" || file.in_test_code(t.line) {
            continue;
        }
        if !allowlisted {
            sink.emit_unconditional(
                file.rel.clone(),
                "L6",
                t.line,
                "`unsafe` outside the kernel allowlist (config::UNSAFE_KERNEL_FILES)".into(),
            );
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_COMMENT_WINDOW);
        let justified = (lo..=t.line).any(|l| {
            file.comment_on(l)
                .is_some_and(|c| c.contains(SAFETY_JUSTIFICATION))
        });
        if !justified {
            sink.emit(
                file,
                "L6",
                t.line,
                format!(
                    "`unsafe` without a `// safety:` justification within \
                     {SAFETY_COMMENT_WINDOW} lines"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, allowlisted: bool) -> Vec<String> {
        let f = SourceFile::scan("t.rs", src);
        let mut sink = Sink::default();
        check(&f, allowlisted, &mut sink);
        sink.findings.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn unsafe_outside_allowlist_flags() {
        let found = run("pub fn f(p: *const u64) -> u64 { unsafe { *p } }", false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("allowlist"));
    }

    #[test]
    fn unjustified_unsafe_in_kernel_flags() {
        let found = run("pub fn f(p: *const u64) -> u64 { unsafe { *p } }", true);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("safety:"));
    }

    #[test]
    fn justified_unsafe_in_kernel_passes() {
        let found = run(
            "pub fn f(p: *const u64) -> u64 {\n    // safety: caller guarantees p is valid\n    unsafe { *p }\n}",
            true,
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn mentions_in_comments_and_idents_ignored() {
        let found = run(
            "//! talks about unsafe in prose\n#![allow(unsafe_code)]\npub fn f() {} // unsafe here too\n",
            false,
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
