//! `cargo run -p xtask -- lint` — the workspace's static-analysis gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint");
    eprintln!();
    eprintln!("Runs the repo-specific lints (L1 panic-freedom, L2 crate headers,");
    eprintln!("L3 format-constant consistency, L4 unchecked arithmetic, L5 atomic");
    eprintln!("orderings, L6 unsafe-kernel confinement, L7 dataflow taint, L8");
    eprintln!("happens-before pairing). Exits 1 if any violation is found.");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.len() == 1 => {}
        _ => return usage(),
    }

    let root = xtask::workspace_root();
    let report = xtask::run_lints(&root);

    for finding in &report.findings {
        println!("{finding}");
    }
    if !report.allows.is_empty() {
        eprintln!(
            "note: {} lint:allow suppression(s) in effect:",
            report.allows.len()
        );
        for allow in &report.allows {
            eprintln!(
                "  {}:{}: [{}] allowed: {}",
                allow.file, allow.line, allow.lint, allow.reason
            );
        }
    }
    let per_lint: Vec<String> = report
        .per_lint
        .iter()
        .map(|s| {
            format!(
                "{} {} ({:.1}ms)",
                s.lint,
                s.findings,
                s.wall.as_secs_f64() * 1e3
            )
        })
        .collect();
    eprintln!("per-lint: {}", per_lint.join(" | "));
    eprintln!(
        "xtask lint: {} file(s) scanned, {} violation(s), {} suppression(s)",
        report.files_scanned,
        report.findings.len(),
        report.allows.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
