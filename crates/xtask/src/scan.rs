//! A deliberately small Rust source scanner: enough lexical structure for
//! repo-specific lints, nothing more.
//!
//! The scanner never parses Rust properly. It produces four things the
//! lints consume:
//!
//! * a **masked** copy of the source — every comment and every string /
//!   char / byte-string literal replaced by spaces (newlines preserved), so
//!   token searches cannot fire inside prose or literals;
//! * a **token stream** over the masked text (identifiers, numbers,
//!   punctuation) with line numbers;
//! * per-line **comment text**, which backs the `// lint:allow(reason)`
//!   escape hatch and the `// ordering:` justification convention;
//! * structural helpers: `#[cfg(test)]` module extents and the brace
//!   extents of named functions, both found by brace matching over the
//!   masked text (safe precisely because strings are masked).

/// One lexical token of the masked source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token text (identifier/number spelling, or a 1–2 char operator).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// Byte offset into the masked source.
    pub offset: usize,
    /// Whether the token is an identifier or keyword (vs. number/punct).
    pub is_ident: bool,
}

/// A scanned source file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Comment/string-masked text, byte-for-byte aligned with the raw file.
    pub masked: String,
    /// Token stream over `masked`.
    pub tokens: Vec<Token>,
    /// `(line, text)` of every comment, `//`/`/* */` markers stripped.
    pub comments: Vec<(usize, String)>,
    /// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

/// A `// lint:allow(reason)` suppression found next to a flagged line.
#[derive(Clone, Debug)]
pub struct AllowUse {
    /// File the suppression lives in.
    pub file: String,
    /// Line of the suppressed finding.
    pub line: usize,
    /// Lint that was suppressed.
    pub lint: &'static str,
    /// The reason inside the parentheses.
    pub reason: String,
}

impl SourceFile {
    /// Scans `raw`, recording `rel` as the diagnostic path.
    pub fn scan(rel: &str, raw: &str) -> SourceFile {
        let (masked, comments) = mask(raw);
        let tokens = tokenize(&masked);
        let test_ranges = find_test_ranges(&masked, &tokens);
        SourceFile {
            rel: rel.to_string(),
            masked,
            tokens,
            comments,
            test_ranges,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The comment text on `line`, if any.
    pub fn comment_on(&self, line: usize) -> Option<&str> {
        self.comments
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|(_, t)| t.as_str())
    }

    /// Looks for a `lint:allow(reason)` comment covering `line`: on the
    /// line itself (trailing) or on the directly preceding line. Returns
    /// the reason when present and non-empty.
    pub fn allow_reason(&self, line: usize) -> Option<String> {
        for l in [line, line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            // A trailing comment on the *previous* code line does not
            // carry down: the preceding-line form must be comment-only.
            if l != line && self.tokens.iter().any(|t| t.line == l) {
                continue;
            }
            if let Some(text) = self.comment_on(l) {
                if let Some(reason) = parse_allow(text) {
                    return Some(reason);
                }
            }
        }
        None
    }

    /// Line extents (1-based, inclusive) of the bodies of every function
    /// named `name`. Signature lines are included. Functions declared
    /// without a body (trait methods) are skipped.
    pub fn fn_extents(&self, name: &str) -> Vec<(usize, usize)> {
        self.fn_spans()
            .into_iter()
            .filter(|s| s.name == name)
            .map(|s| s.lines)
            .collect()
    }

    /// Every function item with a body in the file, in source order,
    /// including nested and `impl`-block functions. Backbone of both the
    /// named-function scoping (L1/L4) and the dataflow layer (L7).
    pub fn fn_spans(&self) -> Vec<FnSpan> {
        let mut out = Vec::new();
        let toks = &self.tokens;
        for i in 0..toks.len() {
            let name = match (toks[i].text.as_str(), toks.get(i + 1)) {
                ("fn", Some(n)) if n.is_ident => n.text.clone(),
                _ => continue,
            };
            // Walk to the body's opening brace; a `;` first means no body.
            let mut j = i + 2;
            let mut depth_angle: i32 = 0;
            let open = loop {
                let Some(t) = toks.get(j) else { break None };
                match t.text.as_str() {
                    "{" if depth_angle <= 0 => break Some(j),
                    ";" if depth_angle <= 0 => break None,
                    "<" | "<<" => depth_angle += if t.text == "<<" { 2 } else { 1 },
                    ">" | ">>" => depth_angle -= if t.text == ">>" { 2 } else { 1 },
                    _ => {}
                }
                j += 1;
            };
            let Some(open) = open else { continue };
            if let Some(close) = match_brace(toks, open) {
                out.push(FnSpan {
                    name,
                    sig_start: i,
                    open,
                    close,
                    lines: (toks[i].line, toks[close].line),
                });
            }
        }
        out
    }
}

/// One function item with a body, located by token indices.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's `{`.
    pub open: usize,
    /// Token index of the body's matching `}`.
    pub close: usize,
    /// 1-based inclusive line extent (signature line through close brace).
    pub lines: (usize, usize),
}

/// Parses `lint:allow(reason)` out of a comment's text.
fn parse_allow(comment: &str) -> Option<String> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let reason = rest[..close].trim();
    if reason.is_empty() {
        None
    } else {
        Some(reason.to_string())
    }
}

/// Replaces comments and string/char literals with spaces (newlines kept),
/// collecting comment text per line on the way.
fn mask(raw: &str) -> (String, Vec<(usize, String)>) {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    let push_comment = |line: usize, text: &str, comments: &mut Vec<(usize, String)>| {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return;
        }
        match comments.last_mut() {
            Some((l, existing)) if *l == line => {
                existing.push(' ');
                existing.push_str(trimmed);
            }
            _ => comments.push((line, trimmed.to_string())),
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..j]);
                push_comment(line, text.trim_start_matches(['/', '!']), &mut comments);
                out.resize(out.len() + (j - i), b' ');
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Find the (nesting-aware) end of the block comment first…
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                // …then emit the mask and attribute the text line by line.
                for (seg, piece) in String::from_utf8_lossy(&bytes[i..j])
                    .split('\n')
                    .enumerate()
                {
                    let text = piece
                        .trim_start_matches(['/', '*', '!', ' '])
                        .trim_end_matches(['/', '*', ' ']);
                    push_comment(line + seg, text, &mut comments);
                }
                for &masked in &bytes[i..j] {
                    if masked == b'\n' {
                        out.push(b'\n');
                        line += 1;
                    } else {
                        out.push(b' ');
                    }
                }
                i = j;
            }
            b'"' => {
                i = mask_cooked_string(bytes, i, &mut out, &mut line);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') && !ident_byte_before(bytes, i) => {
                // Cooked byte string `b"…"`: escape-aware, exactly like a
                // plain string literal. (It must NOT take the raw-string
                // path below — `b"\""` contains an escaped quote a raw
                // scan would mistake for the closer.)
                out.push(b' ');
                i = mask_cooked_string(bytes, i + 1, &mut out, &mut line);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"...", r#"..."#, br"...", br#"..."# — find the hash
                // count, then the matching closer. Raw strings have no
                // escapes by definition.
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                // j at the opening quote.
                j += 1;
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'"') => {
                            let mut h = 0;
                            while h < hashes && bytes.get(j + 1 + h) == Some(&b'#') {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break;
                            }
                            j += 1;
                        }
                        Some(&b'\n') => {
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                for &masked in &bytes[i..j.min(bytes.len())] {
                    out.push(if masked == b'\n' { b'\n' } else { b' ' });
                    if masked == b'\n' {
                        line += 1;
                    }
                }
                i = j;
            }
            b'\'' => {
                // Char literal vs. lifetime: a literal closes with `'`
                // within a few bytes; a lifetime never closes.
                let lit_end = char_literal_end(bytes, i);
                if let Some(end) = lit_end {
                    out.resize(out.len() + (end - i), b' ');
                    i = end;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    (
        String::from_utf8(out).expect("masking preserves UTF-8 structure"),
        comments,
    )
}

/// Masks an escape-aware (cooked) string literal whose opening `"` sits at
/// byte `i`. Returns the index one past the closing quote (or EOF).
fn mask_cooked_string(bytes: &[u8], i: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    debug_assert_eq!(bytes[i], b'"');
    out.push(b' ');
    let mut i = i + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                out.push(b' ');
                if i + 1 < bytes.len() {
                    out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                    if bytes[i + 1] == b'\n' {
                        *line += 1;
                    }
                }
                i += 2;
            }
            b'"' => {
                out.push(b' ');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                *line += 1;
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Whether the byte before `i` could be part of an identifier (in which
/// case a `b`/`r` at `i` is the tail of a name, not a literal prefix).
fn ident_byte_before(bytes: &[u8], i: usize) -> bool {
    i > 0 && {
        let p = bytes[i - 1];
        p == b'_' || p.is_ascii_alphanumeric()
    }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Raw forms only: `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#`. Cooked `b"…"`
    // is escape-aware and handled by the string branch above.
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    // Require that `i` is not inside an identifier (names like `number`
    // contain `b`/`r`): the previous byte must not be ident-ish.
    if ident_byte_before(bytes, i) {
        return false;
    }
    let mut k = j;
    while bytes.get(k) == Some(&b'#') {
        k += 1;
    }
    bytes.get(k) == Some(&b'"')
}

/// If `i` starts a char literal, the byte index one past its closing quote.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        // Escape: \n, \', \u{...}, \x7F…
        j += 1;
        if bytes.get(j) == Some(&b'u') {
            while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b'\n' {
                j += 1;
            }
            j += 1;
        } else {
            j += 1;
            // \xNN
            while j < bytes.len() && bytes[j].is_ascii_hexdigit() && j < i + 5 {
                j += 1;
            }
        }
        (bytes.get(j) == Some(&b'\'')).then_some(j + 1)
    } else {
        // One (possibly multi-byte) char then a quote.
        j += 1;
        while j < bytes.len() && j < i + 6 {
            if bytes[j] == b'\'' {
                return Some(j + 1);
            }
            if !(128..192).contains(&bytes[j]) && j > i + 2 {
                break;
            }
            j += 1;
        }
        None
    }
}

fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            tokens.push(Token {
                text: masked[start..i].to_string(),
                line,
                offset: start,
                is_ident: true,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i] == b'_' || bytes[i] == b'.' || bytes[i].is_ascii_alphanumeric())
            {
                // Stop a `..` range from gluing onto a number.
                if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                    break;
                }
                i += 1;
            }
            tokens.push(Token {
                text: masked[start..i].to_string(),
                line,
                offset: start,
                is_ident: false,
            });
            continue;
        }
        // Multi-char operators the lints care about; everything else is a
        // single punct char.
        let two = bytes.get(i + 1).map(|&n| [b, n]);
        let three = (i + 2 < bytes.len()).then(|| [b, bytes[i + 1], bytes[i + 2]]);
        let text = match (b, two, three) {
            (b'<', _, Some([b'<', b'<', b'='])) => "<<=",
            (b'<', Some([b'<', b'<']), _) => "<<",
            (b'<', Some([b'<', b'=']), _) => "<=",
            (b'>', Some([b'>', b'>']), _) => ">>",
            (b'>', Some([b'>', b'=']), _) => ">=",
            (b'=', Some([b'=', b'=']), _) => "==",
            (b'!', Some([b'!', b'=']), _) => "!=",
            (b'&', Some([b'&', b'&']), _) => "&&",
            (b'|', Some([b'|', b'|']), _) => "||",
            (b'+', Some([b'+', b'=']), _) => "+=",
            (b'*', Some([b'*', b'=']), _) => "*=",
            (b'-', Some([b'-', b'=']), _) => "-=",
            (b':', Some([b':', b':']), _) => "::",
            (b'.', Some([b'.', b'.']), _) => "..",
            (b'-', Some([b'-', b'>']), _) => "->",
            (b'=', Some([b'=', b'>']), _) => "=>",
            _ => {
                tokens.push(Token {
                    text: (b as char).to_string(),
                    line,
                    offset: i,
                    is_ident: false,
                });
                i += 1;
                continue;
            }
        };
        tokens.push(Token {
            text: text.to_string(),
            line,
            offset: i,
            is_ident: false,
        });
        i += text.len();
    }
    tokens
}

/// Token index of the `}` matching the `{` at token index `open`.
fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extents of items annotated `#[cfg(test)]` (modules, functions, impls).
fn find_test_ranges(masked: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut search = 0usize;
    while let Some(found) = masked[search..].find("#[cfg(test)]") {
        let at = search + found;
        search = at + 1;
        // First token at or after the end of the attribute.
        let after = at + "#[cfg(test)]".len();
        let Some(first) = tokens.iter().position(|t| t.offset >= after) else {
            continue;
        };
        // Skip further attributes, then find the item's opening brace.
        let mut j = first;
        while let Some(t) = tokens.get(j) {
            if t.text == "#" {
                // Skip the whole `#[...]`.
                let mut depth = 0;
                j += 1;
                while let Some(t2) = tokens.get(j) {
                    match t2.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
                continue;
            }
            break;
        }
        let start_line = tokens.get(first).map(|t| t.line).unwrap_or(1);
        let mut open = None;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        if let Some(open) = open {
            if let Some(close) = match_brace(tokens, open) {
                ranges.push((start_line, tokens[close].line));
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"unwrap()\"; // .unwrap() here\nlet b = 'x';\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.masked.contains("unwrap"));
        assert_eq!(f.comment_on(1), Some(".unwrap() here"));
        assert_eq!(f.masked.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"panic!()\"#; }";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.masked.contains("panic"));
        assert!(f.masked.contains("'a"));
    }

    #[test]
    fn cooked_byte_strings_honor_escapes() {
        // `b"\""` used to be treated as a raw string: the escaped quote
        // "closed" the literal and the trailing `unwrap()` leaked into the
        // masked text as phantom live tokens.
        let src = "let a = b\"\\\"unwrap()\"; let b = 1;\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.masked.contains("unwrap"), "masked: {:?}", f.masked);
        assert!(f.masked.contains("let b = 1"), "masked: {:?}", f.masked);
    }

    #[test]
    fn raw_byte_strings_still_mask_without_escapes() {
        // In `br"\"` the backslash is a literal byte and the quote closes.
        let src = "let a = br\"\\\"; let live = 2;\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(f.masked.contains("let live = 2"), "masked: {:?}", f.masked);
        let src = "let a = br#\"has \"quote\" inside\"#; let live = 3;\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.masked.contains("quote"), "masked: {:?}", f.masked);
        assert!(f.masked.contains("let live = 3"), "masked: {:?}", f.masked);
    }

    #[test]
    fn nested_block_comments_mask_fully() {
        let src =
            "/* outer /* inner unwrap() */ still comment */ let live = 4;\n/**/ let also = 5;\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("still"));
        assert!(f.masked.contains("let live = 4"));
        assert!(f.masked.contains("let also = 5"));
    }

    #[test]
    fn comparison_operators_tokenize_as_units() {
        let f = SourceFile::scan("t.rs", "if a <= b && c != d || e >= f { g == h; }");
        let texts: Vec<&str> = f.tokens.iter().map(|t| t.text.as_str()).collect();
        for op in ["<=", "&&", "!=", "||", ">=", "=="] {
            assert!(texts.contains(&op), "missing {op} in {texts:?}");
        }
    }

    #[test]
    fn fn_spans_enumerate_all_bodies() {
        let src = "fn a() { fn inner() {} }\nimpl X { fn b(&self) -> u8 { 0 } }\ntrait T { fn no_body(); }\n";
        let f = SourceFile::scan("t.rs", src);
        let names: Vec<String> = f.fn_spans().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["a", "inner", "b"]);
    }

    #[test]
    fn allow_reason_found_same_and_previous_line() {
        let src = "// lint:allow(slice is length-checked above)\nlet x = a[0];\nlet y = b[1]; // lint:allow(fixed array)\nlet z = c[2];\n";
        let f = SourceFile::scan("t.rs", src);
        assert_eq!(
            f.allow_reason(2).as_deref(),
            Some("slice is length-checked above")
        );
        assert_eq!(f.allow_reason(3).as_deref(), Some("fixed array"));
        assert_eq!(f.allow_reason(4), None);
    }

    #[test]
    fn test_ranges_cover_cfg_test_modules() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_live() {}\n";
        let f = SourceFile::scan("t.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn fn_extents_find_named_bodies() {
        let src = "impl X {\n    pub fn read_from(a: u8) -> Result<u8, ()> {\n        Ok(a)\n    }\n    fn other() {}\n}\n";
        let f = SourceFile::scan("t.rs", src);
        assert_eq!(f.fn_extents("read_from"), vec![(2, 4)]);
        assert_eq!(f.fn_extents("missing"), vec![]);
    }

    #[test]
    fn generic_signatures_do_not_confuse_extents() {
        let src = "fn read_from<S: Fn() -> Vec<u8>>(s: S) -> Result<(), ()> where S: Sized {\n    Ok(())\n}\n";
        let f = SourceFile::scan("t.rs", src);
        assert_eq!(f.fn_extents("read_from"), vec![(1, 3)]);
    }
}
