//! Seeded L3: version bumped with no regenerated goldens.

pub const FORMAT_VERSION: u32 = 9;
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Spec table stub.
pub mod spec_id {
    /// Grafite.
    pub const GRAFITE: u32 = 1;
}

pub fn read_from(words: &[u64]) -> u64 {
    words[3]
}

/// Seeded L6: `unsafe` outside the kernel allowlist.
pub unsafe fn touch() {}
