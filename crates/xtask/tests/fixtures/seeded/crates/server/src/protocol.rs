//! Seeded L7 taint: a frame-declared allocation size reaching
//! `with_capacity` unlaundered, plus the bounded twin that must pass.

pub fn decode_frame(payload: &[u8]) -> Vec<u8> {
    let quota = le_word(payload, 0);
    let mut out = Vec::with_capacity(quota);
    out.extend_from_slice(payload);
    out
}

pub fn decode_frame_bounded(payload: &[u8]) -> Vec<u8> {
    let quota = le_word(payload, 0).min(payload.len());
    let mut out = Vec::with_capacity(quota);
    out.extend_from_slice(payload);
    out
}

fn le_word(payload: &[u8], at: usize) -> usize {
    match payload.get(at) {
        Some(b) => *b as usize,
        None => 0,
    }
}
