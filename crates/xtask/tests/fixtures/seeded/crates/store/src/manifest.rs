//! Seeded L5 and store-version violations.

use std::sync::atomic::{AtomicU64, Ordering};

pub const STORE_FORMAT_VERSION: u32 = 0;

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn load_count(counter: &AtomicU64) -> u64 {
    // ordering: fixture-level justification for the audit
    counter.load(Ordering::Acquire)
}
