//! Seeded L8 happens-before violations: an unpaired publish edge, a
//! class that contradicts its op's ordering, and a Relaxed class that
//! claims a pairing it cannot have.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(version: &AtomicU64) {
    // ordering: Release->Acquire pairs-with version.load; no acquire partner exists anywhere
    version.store(1, Ordering::Release);
}

pub fn misclassified(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed-counter; but the op below is Acquire
    counter.load(Ordering::Acquire)
}

pub fn contradictory(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed-counter pairs-with counter.fetch_add; relaxed cannot pair
    counter.fetch_add(1, Ordering::Relaxed)
}
