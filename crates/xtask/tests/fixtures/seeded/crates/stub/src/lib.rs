#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Conforming member crate for the seeded fixture.
