//! Seeded L1/L4 violations: this file mirrors the untrusted io module.

pub fn decode(v: &[u64]) -> u64 {
    let first = v[0];
    let total = v.len() + 1;
    let x: u64 = v.iter().copied().next().unwrap();
    // lint:allow(fixture demonstrates a counted suppression)
    let allowed = v[1];
    panic!("seeded: {first} {total} {x} {allowed}");
}
