//! Seeded L6: allowlisted kernel file with one justified and one
//! unjustified `unsafe` block.

pub fn justified(p: *const u64) -> u64 {
    // safety: fixture pretends the caller guarantees p is valid.
    unsafe { *p }
}

/// Far enough below the justified block that its marker comment
/// falls outside the search window.
pub fn unjustified(p: *const u64) -> u64 {
    unsafe { *p }
}
