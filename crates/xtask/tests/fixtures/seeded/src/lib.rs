pub fn seeded_root() {}
