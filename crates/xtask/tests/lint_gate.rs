//! Self-tests for the xtask lint gate.
//!
//! Two directions: the *real* tree must pass clean (this is what makes the
//! lints self-enforcing under plain `cargo test`), and the committed
//! seeded-violation fixture under `tests/fixtures/seeded/` must make every
//! lint fire at the exact `file:line` it plants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/seeded")
}

#[test]
fn real_tree_is_clean() {
    let report = xtask::run_lints(&xtask::workspace_root());
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "the tree must stay lint-clean; violations:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 10, "scoped lints scanned too little");
}

#[test]
fn seeded_fixture_fires_every_lint() {
    let report = xtask::run_lints(&fixture_root());
    let got: Vec<(String, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.lint.to_string(), f.file.clone(), f.line))
        .collect();

    let expect = |lint: &str, file: &str, line: usize| {
        assert!(
            got.iter()
                .any(|(l, f, n)| l == lint && f == file && *n == line),
            "expected {lint} at {file}:{line}; got:\n{:#?}",
            report
                .findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    };

    // L1 panic-freedom: bare index, unwrap, panic! in the untrusted file.
    expect("L1", "crates/succinct/src/io.rs", 4);
    expect("L1", "crates/succinct/src/io.rs", 6);
    expect("L1", "crates/succinct/src/io.rs", 9);
    // ...and a bare index inside a `read_from` body of a core file.
    expect("L1", "crates/core/src/persist.rs", 13);
    // L2 header conformance: the fixture root crate has no headers.
    expect("L2", "src/lib.rs", 1);
    // L4 unchecked arithmetic: `v.len() + 1`.
    expect("L4", "crates/succinct/src/io.rs", 5);
    // L5 atomics: `Ordering::Relaxed` with no `// ordering:` comment.
    expect("L5", "crates/store/src/manifest.rs", 8);
    // L3 format constants: FORMAT_VERSION=9 has no tests/golden/v9 set,
    // and STORE_FORMAT_VERSION=0 is out of range.
    expect("L3", "tests/golden/v9/manifest.txt", 1);
    expect("L3", "crates/store/src/manifest.rs", 1);
    // L6 unsafe confinement: an unjustified `unsafe` inside the
    // allowlisted kernel file, and any `unsafe` outside the allowlist.
    expect("L6", "crates/succinct/src/simd/kernels.rs", 12);
    expect("L6", "crates/core/src/persist.rs", 17);
    // L7 dataflow taint: the frame-declared `quota` (a name the L4
    // heuristic has no opinion about) reaches `with_capacity` unlaundered.
    expect("L7", "crates/server/src/protocol.rs", 6);
    // L8 happens-before: the prose `// ordering:` comment that satisfies
    // L5 fails the machine grammar…
    expect("L8", "crates/store/src/manifest.rs", 13);
    // …a declared publish edge has no Acquire-side partner anywhere…
    expect("L8", "crates/store/src/swap.rs", 9);
    // …an Acquire op declared as a Relaxed class…
    expect("L8", "crates/store/src/swap.rs", 14);
    // …and a Relaxed class claiming a pairing it cannot have.
    expect("L8", "crates/store/src/swap.rs", 19);

    // Both L2 headers are reported for the fixture root.
    assert_eq!(
        got.iter()
            .filter(|(l, f, _)| l == "L2" && f == "src/lib.rs")
            .count(),
        2,
        "both required headers must be reported missing"
    );

    // The justified Ordering::Acquire (line 13) must NOT fire.
    assert!(
        !got.iter()
            .any(|(l, f, n)| l == "L5" && f == "crates/store/src/manifest.rs" && *n == 13),
        "a justified ordering must pass the audit"
    );

    // The `.min(payload.len())`-bounded twin (protocol.rs line 13) must
    // NOT fire: the sanitizer launders the taint.
    assert!(
        !got.iter()
            .any(|(l, f, n)| l == "L7" && f == "crates/server/src/protocol.rs" && *n == 13),
        "a bounded allocation size must pass the taint lint"
    );
    assert_eq!(
        got.iter().filter(|(l, _, _)| l == "L7").count(),
        1,
        "exactly one taint violation is seeded"
    );
    // One finding per seeded defect: a malformed declaration is dropped
    // from the global pairing pass rather than reported twice.
    assert_eq!(
        got.iter().filter(|(l, _, _)| l == "L8").count(),
        4,
        "exactly four happens-before violations are seeded"
    );

    // The `// safety:`-justified unsafe (kernels.rs line 6) must NOT fire.
    assert!(
        !got.iter()
            .any(|(l, f, n)| l == "L6" && f == "crates/succinct/src/simd/kernels.rs" && *n == 6),
        "a justified unsafe block must pass the confinement audit"
    );

    // The lint:allow'd index (io.rs line 8) is suppressed but counted.
    assert!(
        !got.iter()
            .any(|(_, f, n)| f == "crates/succinct/src/io.rs" && *n == 8),
        "lint:allow must suppress the finding"
    );
    assert_eq!(report.allows.len(), 1, "exactly one suppression is seeded");
    let allow = &report.allows[0];
    assert_eq!(allow.file, "crates/succinct/src/io.rs");
    assert_eq!(allow.line, 8);
    assert_eq!(allow.reason, "fixture demonstrates a counted suppression");
}

#[test]
fn cli_rejects_unknown_usage() {
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .status()
        .expect("spawn xtask");
    assert_eq!(status.code(), Some(2), "unknown subcommand must exit 2");
}

#[test]
fn cli_lint_passes_on_the_real_tree() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .output()
        .expect("spawn xtask");
    assert!(
        output.status.success(),
        "xtask lint failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
