//! Property tests for the lint scanner.
//!
//! Every lint downstream of [`xtask::scan::SourceFile`] assumes three
//! things of the masking pass: it never panics (the linter must survive
//! any file in the tree, including ones mid-edit), it preserves byte
//! length and newline positions (findings are reported by `file:line`),
//! and it is *idempotent* — masking already-masked text changes nothing,
//! because masking only ever removes comment/literal delimiters, never
//! introduces them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proptest::prelude::*;
use xtask::scan::SourceFile;

/// Adversarial almost-Rust fragments: raw-string openers/closers with
/// mismatched hash counts, nested block comments, escaped quotes, byte
/// strings, lifetimes next to char literals — the constructs the masking
/// pass special-cases.
const FRAGMENTS: &[&str] = &[
    "r#\"",
    "\"#",
    "r\"",
    "br#\"",
    "b\"",
    "\"",
    "\\\"",
    "\\\\",
    "'",
    "'a,",
    "'x'",
    "'\\n'",
    "//",
    "/*",
    "*/",
    "/**/",
    "/* /* */",
    "fn f() {",
    "}",
    "{",
    "\n",
    "let x = 1;",
    "v[i]",
    "Ordering::Relaxed",
    "// ordering: Relaxed-counter\n",
    "#[cfg(test)]",
    "ident",
    "0xFF",
    " ",
    "#",
    "r",
    "b",
    "é",
    "->",
    ";",
    "..=",
];

/// Joins fragment-pool picks into one adversarial source string.
fn soup(idxs: &[usize]) -> String {
    idxs.iter().map(|&i| FRAGMENTS[i]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (lossy-decoded) byte soup: the scanner must not panic,
    /// and the mask must be a byte-for-byte overlay of the input.
    #[test]
    fn scan_survives_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let file = SourceFile::scan("soup.rs", &text);
        prop_assert_eq!(file.masked.len(), text.len());
        prop_assert_eq!(
            file.masked.matches('\n').count(),
            text.matches('\n').count()
        );
    }

    /// Masking a masked file is a fixpoint, even for inputs built from
    /// the scanner's own special cases.
    #[test]
    fn masking_is_idempotent_on_almost_rust(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let text = soup(&idxs);
        let first = SourceFile::scan("soup.rs", &text);
        let second = SourceFile::scan("soup.rs", &first.masked);
        prop_assert_eq!(&second.masked, &first.masked);
        prop_assert_eq!(second.tokens.len(), first.tokens.len());
        // A masked file carries no comments: they were spaced out.
        prop_assert!(second.comments.is_empty());
    }

    /// …and for unstructured byte soup too.
    #[test]
    fn masking_is_idempotent_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let first = SourceFile::scan("soup.rs", &text);
        let second = SourceFile::scan("soup.rs", &first.masked);
        prop_assert_eq!(&second.masked, &first.masked);
    }

    /// The derived views stay panic-free on adversarial input.
    #[test]
    fn derived_views_survive_almost_rust(
        idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..64),
        line in 0usize..128,
    ) {
        let text = soup(&idxs);
        let file = SourceFile::scan("soup.rs", &text);
        let _ = file.fn_spans();
        let _ = file.in_test_code(line);
        let _ = file.comment_on(line);
        let _ = file.allow_reason(line);
    }
}
