//! The paper's Figure 1 in miniature: what happens to range filters when
//! query endpoints creep towards the stored keys (correlated / adversarial
//! workloads) — heuristics collapse, Grafite does not.
//!
//! Every filter is built through the library-level registry: one
//! `FilterConfig`, one `FilterSpec` per column, no per-filter constructor
//! in sight.
//!
//! ```sh
//! cargo run --release --example adversarial_queries
//! ```

use grafite::{grafite_workloads as workloads, standard_registry, FilterConfig, FilterSpec};
use workloads::{correlated_queries, datasets::Dataset, generate};

fn main() {
    let n = 100_000;
    let keys = generate(Dataset::Uniform, n, 1);
    let l = 32;

    let budget = 20.0;
    let specs = [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
        FilterSpec::SurfReal,
    ];
    let registry = standard_registry();
    let cfg = FilterConfig::new(&keys).bits_per_key(budget).max_range(l);
    let filters: Vec<_> = specs
        .iter()
        .map(|&spec| registry.build(spec, &cfg).expect("feasible at 20 bits/key"))
        .collect();

    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>12}",
        "corr. D", "Grafite", "Bucketing", "SNARF", "SuRF"
    );
    println!("{}", "-".repeat(66));
    for degree in [0.0, 0.25, 0.5, 0.75, 1.0] {
        // Empty ranges whose left endpoint sits within 2^{c(1-D)} of a key.
        let queries = correlated_queries(&keys, 20_000, l, degree, 7);
        let mut cells = Vec::new();
        for f in &filters {
            let fps = queries
                .iter()
                .filter(|q| f.may_contain_range(q.lo, q.hi))
                .count();
            cells.push(format!("{:>12.2e}", fps as f64 / queries.len() as f64));
        }
        println!("{degree:>10.2} | {}", cells.join(" "));
    }
    println!(
        "\nGrafite's FPR stays at its guarantee (l/2^(B-2) = {:.1e} for l={l}) at\n\
         every degree; the heuristics approach 1.0 — an adversary who knows a\n\
         few keys can make them useless (paper §1, Figure 1).",
        l as f64 / (budget - 2.0).exp2()
    );
}
