//! The paper's Figure 1 in miniature: what happens to range filters when
//! query endpoints creep towards the stored keys (correlated / adversarial
//! workloads) — heuristics collapse, Grafite does not.
//!
//! ```sh
//! cargo run --release --example adversarial_queries
//! ```

use grafite::{grafite_workloads as workloads, BucketingFilter, GrafiteFilter, RangeFilter};
use grafite_filters::{Snarf, SuffixMode, Surf};
use workloads::{correlated_queries, datasets::Dataset, generate};

fn main() {
    let n = 100_000;
    let keys = generate(Dataset::Uniform, n, 1);
    let budget = 20.0;
    let l = 32;

    let grafite = GrafiteFilter::builder().bits_per_key(budget).build(&keys).unwrap();
    let bucketing = BucketingFilter::builder().bits_per_key(budget).build(&keys).unwrap();
    let snarf = Snarf::new(&keys, budget).unwrap();
    let surf = Surf::new(&keys, SuffixMode::Real { bits: 9 }).unwrap();
    let filters: Vec<&dyn RangeFilter> = vec![&grafite, &bucketing, &snarf, &surf];

    println!("{:>10} | {:>12} {:>12} {:>12} {:>12}", "corr. D", "Grafite", "Bucketing", "SNARF", "SuRF");
    println!("{}", "-".repeat(66));
    for degree in [0.0, 0.25, 0.5, 0.75, 1.0] {
        // Empty ranges whose left endpoint sits within 2^{c(1-D)} of a key.
        let queries = correlated_queries(&keys, 20_000, l, degree, 7);
        let mut cells = Vec::new();
        for f in &filters {
            let fps = queries.iter().filter(|q| f.may_contain_range(q.lo, q.hi)).count();
            cells.push(format!("{:>12.2e}", fps as f64 / queries.len() as f64));
        }
        println!("{degree:>10.2} | {}", cells.join(" "));
    }
    println!(
        "\nGrafite's FPR stays at its guarantee ({:.1e} for l={l}) at every degree;\n\
         the heuristics approach 1.0 — an adversary who knows a few keys can\n\
         make them useless (paper §1, Figure 1).",
        grafite.fpp_for_range_size(l)
    );
}
