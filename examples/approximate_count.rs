//! The approximate range-counting extension (paper §3, last paragraph, and
//! §7): Grafite can return an estimate of *how many* keys intersect a range
//! — not just whether any does — at no extra space or time, via the
//! difference of Elias–Fano ranks at the hashed endpoints.
//!
//! ```sh
//! cargo run --release --example approximate_count
//! ```

use grafite::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
use grafite_workloads::WorkloadRng;

fn main() {
    // Event timestamps clustered into bursts (a time-series workload).
    let mut rng = WorkloadRng::new(5);
    let mut keys: Vec<u64> = Vec::new();
    for _ in 0..1_000 {
        let burst_start = rng.below(1 << 40);
        let burst_len = 1 + rng.below(200);
        for i in 0..burst_len {
            keys.push(burst_start + i * (1 + rng.below(50)));
        }
    }
    keys.sort_unstable();
    keys.dedup();
    let n = keys.len();

    let cfg = FilterConfig::new(&keys).bits_per_key(18.0);
    let filter = GrafiteFilter::build(&cfg).unwrap();
    println!(
        "{} events indexed at {:.1} bits/key\n",
        n,
        filter.bits_per_key()
    );

    // The estimate is sharp while the expected collision inflation
    // n·l/r stays small (paper footnote 3) — i.e. for windows l well below
    // r/n = 2^16 here. Centre windows on bursts so exact counts are
    // non-trivial.
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "window", "exact", "approx", "abs. err"
    );
    let mut total_abs_err = 0.0;
    let mut windows = 0;
    for exp in [8u32, 10, 12, 14] {
        for _ in 0..3 {
            let center = keys[rng.below(n as u64) as usize];
            let half = 1u64 << (exp - 1);
            let lo = center.saturating_sub(half);
            let hi = center.saturating_add(half);
            let exact = {
                let start = keys.partition_point(|&k| k < lo);
                keys[start..].iter().take_while(|&&k| k <= hi).count()
            };
            let approx = filter.approx_range_count(lo, hi);
            let err = (approx as f64 - exact as f64).abs();
            total_abs_err += err;
            windows += 1;
            println!("{:>8}2^{exp:<2} {exact:>10} {approx:>10} {err:>10.0}", "");
        }
    }
    println!(
        "\nmean absolute error over {windows} windows: {:.2} keys\n\
         (expected collision inflation for the largest window: n*l/r = {:.2})",
        total_abs_err / windows as f64,
        n as f64 * (1u64 << 14) as f64 / filter.reduced_universe() as f64
    );
}
