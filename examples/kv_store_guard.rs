//! A realistic deployment scenario from the paper's introduction: an
//! LSM-style key-value store keeps several immutable sorted runs on disk and
//! a small in-memory range filter per run. Every range read consults the
//! filters first; only runs whose filter says "maybe" are fetched from disk.
//! False positives translate directly into wasted I/O.
//!
//! Because every filter speaks the `BuildableFilter` protocol, the store is
//! *generic over the filter type*: `Store::<GrafiteFilter>` and
//! `Store::<BucketingFilter>` differ in one type parameter, and each run's
//! guard is built from the same `FilterConfig`. The example simulates the
//! store, counts disk fetches with and without filters, and contrasts
//! Grafite with a heuristic filter under a *correlated* (time-locality)
//! read pattern — the workload the paper's §1 names as common and
//! adversarial.
//!
//! ```sh
//! cargo run --release --example kv_store_guard
//! ```

use std::cell::Cell;

use grafite::{BucketingFilter, BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
use grafite_workloads::WorkloadRng;

/// One immutable sorted run "on disk".
struct Run {
    keys: Vec<u64>, // sorted
    fetches: Cell<u64>,
}

impl Run {
    /// The simulated disk read: scans the run for the range.
    fn fetch_range(&self, lo: u64, hi: u64) -> usize {
        self.fetches.set(self.fetches.get() + 1);
        let start = self.keys.partition_point(|&k| k < lo);
        self.keys[start..].iter().take_while(|&&k| k <= hi).count()
    }
}

struct Store<F> {
    runs: Vec<Run>,
    filters: Vec<Option<F>>,
}

impl<F: RangeFilter> Store<F> {
    fn range_count(&self, lo: u64, hi: u64) -> usize {
        let mut found = 0;
        for (run, filter) in self.runs.iter().zip(&self.filters) {
            let maybe = filter
                .as_ref()
                .map_or(true, |f| f.may_contain_range(lo, hi));
            if maybe {
                found += run.fetch_range(lo, hi);
            }
        }
        found
    }

    fn total_fetches(&self) -> u64 {
        self.runs.iter().map(|r| r.fetches.get()).sum()
    }

    fn reset_fetches(&self) {
        for r in &self.runs {
            r.fetches.set(0);
        }
    }
}

impl<F: BuildableFilter> Store<F> {
    /// Guards every run with a filter built through the uniform protocol.
    /// Swapping the filter implementation is a type-parameter change only.
    fn guarded(runs: Vec<Run>, bits_per_key: f64) -> Self {
        let filters = runs
            .iter()
            .map(|r| {
                let cfg = FilterConfig::new(&r.keys).bits_per_key(bits_per_key);
                Some(F::build(&cfg).expect("valid configuration"))
            })
            .collect();
        Self { runs, filters }
    }
}

fn build_runs(rng: &mut WorkloadRng, num_runs: usize, run_len: usize) -> Vec<Run> {
    (0..num_runs)
        .map(|_| {
            let mut keys: Vec<u64> = (0..run_len).map(|_| rng.next_u64() >> 20).collect();
            keys.sort_unstable();
            keys.dedup();
            Run {
                keys,
                fetches: Cell::new(0),
            }
        })
        .collect()
}

fn main() {
    let mut rng = WorkloadRng::new(99);
    let num_runs = 16;
    let run_len = 50_000;
    let runs = build_runs(&mut rng, num_runs, run_len);

    // Time-locality reads: ranges near recently written keys (correlated).
    let all_keys: Vec<u64> = runs.iter().flat_map(|r| r.keys.iter().copied()).collect();
    let queries: Vec<(u64, u64)> = (0..50_000)
        .map(|_| {
            let k = all_keys[rng.below(all_keys.len() as u64) as usize];
            let lo = k.saturating_add(2 + rng.below(1 << 12));
            (lo, lo + 127)
        })
        .collect();

    // Baseline: no filters — every run is fetched for every read.
    let store: Store<GrafiteFilter> = Store {
        filters: runs.iter().map(|_| None).collect(),
        runs,
    };
    let mut hits = 0usize;
    for &(lo, hi) in &queries {
        hits += store.range_count(lo, hi);
    }
    let unfiltered = store.total_fetches();
    println!("no filter      : {unfiltered:>8} disk fetches ({hits} true hits)");

    // Grafite guards (16 bits/key), built through the uniform protocol.
    store.reset_fetches();
    let grafite_store: Store<GrafiteFilter> = Store::guarded(store.runs, 16.0);
    let mut hits_g = 0usize;
    for &(lo, hi) in &queries {
        hits_g += grafite_store.range_count(lo, hi);
    }
    assert_eq!(hits, hits_g, "a range filter must never lose results");
    let grafite_fetches = grafite_store.total_fetches();
    println!(
        "Grafite guard  : {grafite_fetches:>8} disk fetches ({:.1}x fewer, zero lost results)",
        unfiltered as f64 / grafite_fetches as f64
    );

    // Heuristic guard at the same budget: only the type parameter changes.
    grafite_store.reset_fetches();
    let bucketing_store: Store<BucketingFilter> = Store::guarded(grafite_store.runs, 16.0);
    let mut hits_b = 0usize;
    for &(lo, hi) in &queries {
        hits_b += bucketing_store.range_count(lo, hi);
    }
    assert_eq!(hits, hits_b);
    let bucketing_fetches = bucketing_store.total_fetches();
    println!(
        "Bucketing guard: {bucketing_fetches:>8} disk fetches ({:.1}x fewer)",
        unfiltered as f64 / bucketing_fetches as f64
    );
    println!(
        "\nUnder correlated reads the heuristic filter forwards almost every\n\
         query to disk, while Grafite keeps its guaranteed rejection rate —\n\
         the paper's availability argument (§1, §6.7) in action."
    );
}
