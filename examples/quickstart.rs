//! Quickstart: build a Grafite range filter and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grafite::{GrafiteFilter, RangeFilter};

fn main() {
    // A key set — e.g. the keys of one LSM run, timestamps of stored events…
    let keys: Vec<u64> = (0..1_000_000u64).map(|i| i * 12_345 % (1 << 44)).collect();

    // Knob 1: a space budget. 16 bits per key means FPP <= l / 2^14 for a
    // query range of size l (Corollary 3.5) — no tuning, no workload sample.
    let filter = GrafiteFilter::builder()
        .bits_per_key(16.0)
        .build(&keys)
        .expect("valid configuration");

    println!(
        "built Grafite over {} keys: {:.2} bits/key, reduced universe r = {}",
        filter.num_keys(),
        filter.bits_per_key(),
        filter.reduced_universe()
    );

    // Point and range queries. Never a false negative:
    assert!(filter.may_contain(12_345));
    assert!(filter.may_contain_range(12_340, 12_350));

    // Knob 2 (alternative): a target FPP at a max range size.
    let filter2 = GrafiteFilter::builder()
        .epsilon_and_max_range(0.01, 1 << 10)
        .build(&keys)
        .unwrap();
    println!(
        "epsilon-configured filter: {:.2} bits/key, FPP bound at l=1024: {:.4}",
        filter2.bits_per_key(),
        filter2.fpp_for_range_size(1 << 10)
    );

    // Measure the empirical false-positive rate on empty ranges.
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let mut fps = 0u32;
    let mut empties = 0u32;
    let mut state = 0xDEADBEEFu64;
    while empties < 100_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = state % (1 << 45);
        let b = a + 31;
        let i = sorted.partition_point(|&k| k < a);
        if i < sorted.len() && sorted[i] <= b {
            continue; // not an empty range
        }
        empties += 1;
        if filter.may_contain_range(a, b) {
            fps += 1;
        }
    }
    println!(
        "empirical FPR on empty 32-ranges: {:.2e} (bound: {:.2e})",
        fps as f64 / empties as f64,
        filter.fpp_for_range_size(32)
    );
}
