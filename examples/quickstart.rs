//! Quickstart: build a Grafite range filter through the unified
//! `FilterConfig`/`BuildableFilter` API and query it — one at a time and
//! batched.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grafite::grafite_core::GrafiteTuning;
use grafite::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};

fn main() {
    // A key set — e.g. the keys of one LSM run, timestamps of stored events…
    let keys: Vec<u64> = (0..1_000_000u64).map(|i| i * 12_345 % (1 << 44)).collect();

    // Knob 1: a space budget. 16 bits per key means FPP <= l / 2^14 for a
    // query range of size l (Corollary 3.5) — no tuning, no workload sample.
    let cfg = FilterConfig::new(&keys).bits_per_key(16.0);
    let filter = GrafiteFilter::build(&cfg).expect("valid configuration");

    println!(
        "built Grafite over {} keys: {:.2} bits/key, reduced universe r = {}",
        filter.num_keys(),
        filter.bits_per_key(),
        filter.reduced_universe()
    );

    // Point and range queries. Never a false negative:
    assert!(filter.may_contain(12_345));
    assert!(filter.may_contain_range(12_340, 12_350));

    // Knob 2 (alternative): a target FPP at a max range size, through the
    // typed per-filter tuning (Theorem 3.4 sizing).
    let cfg2 = FilterConfig::new(&keys).max_range(1 << 10);
    let filter2 = GrafiteFilter::build_with(
        &cfg2,
        &GrafiteTuning {
            epsilon: Some(0.01),
            ..GrafiteTuning::default()
        },
    )
    .unwrap();
    println!(
        "epsilon-configured filter: {:.2} bits/key, FPP bound at l=1024: {:.4}",
        filter2.bits_per_key(),
        filter2.fpp_for_range_size(1 << 10)
    );

    // Measure the empirical false-positive rate on empty ranges — with the
    // batch API: a sorted batch is answered in one forward pass over the
    // filter's Elias–Fano codes, with answers identical to the scalar path.
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let mut queries: Vec<(u64, u64)> = Vec::new();
    let mut state = 0xDEADBEEFu64;
    while queries.len() < 100_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = state % (1 << 45);
        let b = a + 31;
        let i = sorted.partition_point(|&k| k < a);
        if i < sorted.len() && sorted[i] <= b {
            continue; // not an empty range
        }
        queries.push((a, b));
    }
    queries.sort_unstable();
    let mut answers = Vec::new();
    filter.may_contain_ranges(&queries, &mut answers);
    let fps = answers.iter().filter(|&&hit| hit).count();
    println!(
        "empirical FPR on {} empty 32-ranges (batched): {:.2e} (bound: {:.2e})",
        queries.len(),
        fps as f64 / queries.len() as f64,
        filter.fpp_for_range_size(32)
    );
}
