//! Save/load walkthrough: build filters offline, ship them as flat-byte
//! blobs, and serve them after a rebuild-free load — the deployment shape
//! the persistence layer exists for (one builder, many serving shards).
//!
//! ```sh
//! cargo run --release --example save_load
//! ```

use std::time::Instant;

use grafite::grafite_core::persist::bytes_to_words;
use grafite::grafite_core::GrafiteFilterView;
use grafite::{standard_registry, FilterConfig, FilterSpec, RangeFilter};

fn main() {
    let dir = std::env::temp_dir().join("grafite-save-load-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // ── The build box: construct once, serialize to disk ────────────────
    let keys: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    let cfg = FilterConfig::new(&keys)
        .bits_per_key(16.0)
        .max_range(1 << 10);
    let registry = standard_registry();

    println!(
        "== build box: serialize every family to {} ==",
        dir.display()
    );
    for spec in [
        FilterSpec::Grafite,
        FilterSpec::Bucketing,
        FilterSpec::Snarf,
    ] {
        let filter = registry.build(spec, &cfg).expect("feasible at 16 bits/key");
        let path = dir.join(format!("{}.grafilt", filter.name().to_lowercase()));
        let mut file = std::fs::File::create(&path).expect("create blob");
        let bytes = filter.serialize_into(&mut file).expect("serialize");
        println!(
            "  {:<12} {:>9} bytes  = {:.2} measured bits/key",
            filter.name(),
            bytes,
            filter.serialized_bits() as f64 / filter.num_keys() as f64
        );
    }

    // ── A serving shard: load blobs without knowing what they hold ──────
    // The header is self-describing (magic, version, spec id, key count,
    // checksum), so `Registry::load` dispatches to the right family; the
    // rank/select directories come verbatim from the blob — no rebuild.
    println!("== serving shard: load + answer ==");
    for entry in std::fs::read_dir(&dir).expect("list blobs") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("grafilt") {
            continue;
        }
        let blob = std::fs::read(&path).expect("read blob");
        let start = Instant::now();
        let filter = registry.load(&blob).expect("valid blob");
        let load = start.elapsed();
        // Serve a quick batch to show the loaded filter is live.
        let queries: Vec<(u64, u64)> = keys.iter().step_by(9973).map(|&k| (k, k + 64)).collect();
        let mut out = Vec::new();
        filter.may_contain_ranges(&queries, &mut out);
        assert!(out.iter().all(|&hit| hit), "no false negatives after load");
        println!(
            "  {:<12} loaded {:>9} bytes in {:>7.1?} ({} keys), {} queries answered",
            filter.name(),
            blob.len(),
            load,
            filter.num_keys(),
            queries.len()
        );
    }

    // ── Zero-copy: query a Grafite blob without even deserializing ──────
    // With the blob's bytes viewed as words (e.g. an aligned memory-mapped
    // file), `GrafiteFilterView` borrows the Elias–Fano arrays and their
    // directories straight out of the buffer: O(1) "load".
    let blob = std::fs::read(dir.join("grafite.grafilt")).expect("grafite blob");
    let words = bytes_to_words(&blob).expect("whole words");
    let start = Instant::now();
    let view = GrafiteFilterView::view(&words).expect("valid blob");
    let open = start.elapsed();
    assert!(view.may_contain(keys[123_456]));
    println!(
        "== zero-copy view over the same blob opened in {open:?} — \
         {} keys served without copying a single code ==",
        view.num_keys()
    );

    std::fs::remove_dir_all(&dir).ok();
}
