//! Network-serving walkthrough: the full deployment loop — **save →
//! cold-start → serve → query → update → hot-reload → telemetry** — that
//! `grafite-server` adds on top of the sharded [`FilterStore`]. A saved
//! multi-shard manifest cold-starts lazily (`open_mapped` reads only the
//! routing table; shards materialize on first probe), a dependency-free
//! TCP server answers single and batched range probes over a
//! length-prefixed binary protocol, and `RELOAD` swaps a rewritten
//! manifest in atomically without failing one in-flight query.
//!
//! ```sh
//! cargo run --release --example server_client
//! ```
//!
//! [`FilterStore`]: grafite::FilterStore

use std::io::BufWriter;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use grafite::{
    serve, standard_registry, Client, FamilySpec, FilterSpec, FilterStore, Partitioning,
    StoreConfig,
};

fn main() {
    let registry = standard_registry();
    let keys: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();

    // ── Build: range-partition 1M keys across 8 Grafite shards, then
    //    save the whole store as one multi-shard manifest ───────────────
    let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
        .bits_per_key(16.0)
        .max_range(1 << 8)
        .partitioning(Partitioning::Range { shards: 8 });
    let store = FilterStore::build(&registry, config, &keys).expect("feasible at 16 bits/key");
    let manifest = std::env::temp_dir().join(format!(
        "grafite_server_example_{}.store",
        std::process::id()
    ));
    let file = std::fs::File::create(&manifest).expect("create manifest file");
    let mut writer = BufWriter::new(file);
    let written = store.save_to(&mut writer).expect("serialize store");
    drop(writer);
    println!(
        "== saved {} keys / {} shards ({} KiB manifest) ==",
        store.num_keys(),
        store.snapshot().num_shards(),
        written / 1024
    );
    drop(store);

    // ── Cold-start: open the manifest lazily and put it on the wire.
    //    `open_mapped` is O(shards) small reads — nothing materializes
    //    until a probe routes to a shard ──────────────────────────────────
    let start = Instant::now();
    let served =
        Arc::new(FilterStore::open_mapped(&registry, &manifest).expect("scan manifest header"));
    println!(
        "open_mapped: {:.2?}, {} of 8 shards materialized",
        start.elapsed(),
        served.stats().lazy_shard_loads()
    );
    let handle = serve(Arc::clone(&served), "127.0.0.1:0", Some(manifest.clone()))
        .expect("bind an ephemeral port");
    let addr = handle.addr();
    println!("serving on {addr}");

    // ── Query: a single probe, then one sorted batch — the server feeds
    //    batches straight into Grafite's one-pass probe ──────────────────
    let mut client = Client::connect(addr).expect("connect");
    assert!(
        client.query(keys[7], keys[7]).expect("QUERY round-trip"),
        "no false negatives, ever"
    );
    let probes: Vec<(u64, u64)> = keys
        .iter()
        .step_by(4_096)
        .map(|&k| (k, k.saturating_add(16)))
        .collect();
    let answers = client.query_batch(&probes).expect("BATCH_QUERY round-trip");
    assert!(answers.iter().all(|&hit| hit));
    println!(
        "batch of {} probes answered, {} of 8 shards now materialized",
        probes.len(),
        served.stats().lazy_shard_loads()
    );

    // Concurrent connections: probes that arrive together coalesce into
    // one store batch (the STATS export below reports the factor).
    thread::scope(|scope| {
        for t in 0..4u64 {
            let probes = &probes;
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for &(a, b) in probes.iter().skip(t as usize * 13).take(64) {
                    assert!(c.query(a, b).expect("QUERY round-trip"));
                }
            });
        }
    });

    // ── Update over the wire, persist, hot-reload: `APPLY` rebuilds only
    //    the dirty shards; rewriting the manifest and sending `RELOAD`
    //    swaps the new file in without dropping in-flight queries ────────
    let summary = client
        .apply(&[(true, 42), (false, keys[0])])
        .expect("APPLY round-trip");
    println!(
        "applied: +{} -{} keys -> store version {}",
        summary.inserted, summary.deleted, summary.version
    );
    assert!(client.query(42, 42).expect("QUERY round-trip"));
    let file = std::fs::File::create(&manifest).expect("rewrite manifest file");
    let mut writer = BufWriter::new(file);
    served
        .save_to(&mut writer)
        .expect("serialize updated store");
    drop(writer);
    let version = client.reload(None).expect("RELOAD round-trip");
    println!("hot-reloaded manifest -> store version {version}");
    // The insert survived the save/reload round-trip (a true positive —
    // the delete is only *probably* gone: filters never promise absence).
    assert!(client.query(42, 42).expect("QUERY round-trip"));

    // ── Telemetry: one JSON document over STATS ─────────────────────────
    let stats = client.stats_json().expect("STATS round-trip");
    println!("stats: {stats}");
    assert!(stats.contains("\"total_errors\":0,"));

    client.shutdown().expect("SHUTDOWN round-trip");
    handle.join();
    std::fs::remove_file(&manifest).ok();
    println!("== server drained and shut down ==");
}
