//! Serving-store walkthrough: the full lifecycle — **build → serve →
//! update → reload** — that `grafite-store` adds on top of the static
//! filters. A sharded store serves lock-free snapshots to reader threads
//! while update batches rebuild only the dirty shards, and the whole store
//! round-trips through one multi-shard manifest file.
//!
//! ```sh
//! cargo run --release --example serving_store
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use grafite::{
    standard_registry, FamilySpec, FilterSpec, FilterStore, Partitioning, StoreConfig, Update,
};

fn main() {
    let registry = standard_registry();
    let keys: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();

    // ── Build: range-partition 1M keys across 8 Grafite shards ──────────
    let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
        .bits_per_key(16.0)
        .max_range(1 << 10)
        .partitioning(Partitioning::Range { shards: 8 });
    let start = Instant::now();
    let store = FilterStore::build(&registry, config, &keys).expect("feasible at 16 bits/key");
    println!(
        "== built {} keys into {} shards in {:.2?} ({:.2} serialized bits/key) ==",
        store.num_keys(),
        store.snapshot().num_shards(),
        start.elapsed(),
        store.snapshot().serialized_bits() as f64 / store.num_keys() as f64
    );

    // ── Serve: reader threads query immutable snapshots lock-free while
    //    a writer lands update batches (only dirty shards rebuild) ───────
    let stop = AtomicBool::new(false);
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let queries: Vec<(u64, u64)> = keys
                    .iter()
                    .step_by(97)
                    .map(|&k| (k, k.saturating_add(64)))
                    .collect();
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // One Arc clone, then the whole batch runs without locks.
                    let snap = store.snapshot();
                    snap.query_ranges(&queries, &mut out);
                    assert!(out.iter().all(|&hit| hit), "key-anchored ranges never miss");
                    served.fetch_add(out.len(), Ordering::Relaxed);
                }
            });
        }
        scope.spawn(|| {
            for batch in 0..3u64 {
                let updates: Vec<Update> = (0..1000)
                    .map(|i| Update::Insert(0xDEAD_0000_0000 + batch * 10_000 + i))
                    .collect();
                let start = Instant::now();
                let report = store
                    .apply(&updates)
                    .expect("rebuild under original config");
                println!(
                    "  batch {batch}: +{} keys, rebuilt {}/{} shards ({} keys) in {:.2?} \
                     -> snapshot v{}",
                    report.inserted,
                    report.dirty_shards,
                    store.snapshot().num_shards(),
                    report.rebuilt_keys,
                    start.elapsed(),
                    report.version
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    println!(
        "== served {} range queries concurrently with 3 update batches ==",
        served.load(Ordering::Relaxed)
    );

    // ── Reload: one manifest file revives the whole store elsewhere ─────
    let path = std::env::temp_dir().join("grafite-serving-store-example.grafshrd");
    let mut file = std::fs::File::create(&path).expect("create manifest");
    let bytes = store.save_to(&mut file).expect("serialize store");
    drop(file);
    let blob = std::fs::read(&path).expect("read manifest");
    let start = Instant::now();
    let reopened = FilterStore::open(&registry, &blob).expect("valid manifest");
    println!(
        "== manifest: {bytes} bytes on disk, reopened {} keys / {} shards in {:.2?} ==",
        reopened.num_keys(),
        reopened.snapshot().num_shards(),
        start.elapsed()
    );
    assert!(reopened.may_contain(keys[123_456]));
    assert!(reopened.may_contain(0xDEAD_0000_0000)); // the updates travelled too
    std::fs::remove_file(&path).ok();
}
