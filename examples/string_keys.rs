//! The string-key extension sketched in the paper's §7: treat byte strings
//! as integers, pick `r = 2^k` so the hash becomes shifts and masks, and
//! realise the inner hash with xxHash64.
//!
//! Key types reach the 64-bit universe through a **monotone `KeyCodec`**:
//! `BytesPrefixCodec` embeds strings through their first eight bytes
//! (big-endian, zero-padded), preserving lexicographic order — so keys
//! should carry their entropy early. Keys sharing an 8-byte prefix fold
//! together: positives only, never negatives. The same filter also speaks
//! the workspace-wide `RangeFilter`/`BuildableFilter` protocols over the
//! embedded integer universe (`IdentityCodec`).
//!
//! ```sh
//! cargo run --release --example string_keys
//! ```

use grafite::grafite_core::{BytesPrefixCodec, KeyCodec, StringGrafite};
use grafite::RangeFilter;

fn main() {
    // Order IDs: a 4-char region code + 4-digit sequence number — the kind
    // of short sortable identifier a KV store indexes. All entropy lands in
    // the first 8 bytes, so the embedding is lossless here.
    let regions = ["amst", "berl", "dubl", "lisb", "pari"];
    let mut keys: Vec<String> = Vec::new();
    for region in regions {
        for seq in 0..2_000 {
            keys.push(format!("{region}{seq:04}"));
        }
    }
    keys.sort();

    let filter = StringGrafite::new(&keys, 16.0, 7).expect("valid budget");
    println!(
        "indexed {} order IDs at {:.1} bits/key",
        filter.num_keys(),
        filter.size_in_bits() as f64 / filter.num_keys() as f64
    );

    // Point lookups: no false negatives, ever.
    assert!(filter.may_contain(b"amst0042"));
    assert!(filter.may_contain(b"pari1999"));

    // Lexicographic range probes: "any order from region berl in 0100-0199?"
    assert!(filter.may_contain_range(b"berl0100", b"berl0199"));

    // The same query through the integer RangeFilter view: embed the
    // endpoints with the codec, probe through the trait. Identical answer —
    // the byte API is sugar over the monotone embedding.
    let (lo, hi) = (
        BytesPrefixCodec::encode(b"berl0100"),
        BytesPrefixCodec::encode(b"berl0199"),
    );
    assert!(RangeFilter::may_contain_range(&filter, lo, hi));

    // Ranges over absent regions are filtered with high probability.
    let mut positives = 0;
    for seq in 0..2_000 {
        let lo = format!("roma{seq:04}");
        let hi = format!("roma{seq:04}~");
        if filter.may_contain_range(lo.as_bytes(), hi.as_bytes()) {
            positives += 1;
        }
    }
    println!("false positives on 2k disjoint foreign ranges: {positives}");

    // The embedding cap in action: entropy past byte 8 is invisible.
    let folded = StringGrafite::new(&["prefix00-a", "prefix00-b"], 16.0, 0).unwrap();
    assert!(folded.may_contain(b"prefix00-anything"));
    println!("keys sharing an 8-byte prefix fold together (conservative positives)");
}
