//! Budget planning with Grafite's closed-form guarantee (Corollary 3.5):
//! because the FPP bound `min{1, ℓ/2^(B−2)}` is exact and
//! distribution-free, an operator can size the filter *on paper* — no
//! workload sample, no trial deployment — and verify it empirically
//! afterwards. This is the "works robustly out of the box" deployment
//! story of the paper's introduction.
//!
//! ```sh
//! cargo run --release --example tune_budget
//! ```

use grafite::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
use grafite_workloads::{datasets::Dataset, generate, uncorrelated_queries};

/// Smallest budget B with ℓ/2^(B−2) <= target for ranges of size `l`.
fn budget_for(target_fpp: f64, l: u64) -> f64 {
    (l as f64 / target_fpp).log2() + 2.0
}

fn main() {
    let keys = generate(Dataset::Books, 200_000, 9);

    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "target FPP", "range l", "B (theory)", "bits/key", "measured", "bound held?"
    );
    for (target, l) in [
        (0.05, 32u64),
        (0.01, 32),
        (0.001, 32),
        (0.01, 1024),
        (0.0001, 1024),
    ] {
        let b = budget_for(target, l);
        let cfg = FilterConfig::new(&keys).bits_per_key(b).max_range(l);
        let filter = GrafiteFilter::build(&cfg).unwrap();
        let queries = uncorrelated_queries(&keys, 50_000, l, 7);
        let fps = queries
            .iter()
            .filter(|q| filter.may_contain_range(q.lo, q.hi))
            .count();
        let measured = fps as f64 / queries.len() as f64;
        println!(
            "{target:>12.0e} {l:>10} {b:>12.2} {:>12.2} {measured:>12.2e} {:>12}",
            filter.bits_per_key(),
            if measured <= target * 1.5 + 1e-4 {
                "yes"
            } else {
                "NO"
            },
        );
    }
    println!(
        "\nEach row was sized from the formula B = log2(l / FPP) + 2 alone —\n\
         no sample workload, no tuning run, and the guarantee holds on any\n\
         dataset and any query distribution (here: Books-like keys)."
    );
}
