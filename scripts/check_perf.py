#!/usr/bin/env python3
"""Gate perf reports produced by the `repro` harness.

Usage: check_perf.py <baseline BENCH_query.json> <fresh BENCH_query.json>
       check_perf.py serve <BENCH_serve.json>
       check_perf.py build <BENCH_build.json>

Hotpath mode (two files): raw nanosecond numbers are machine-dependent, so
every `*_ns` metric is first normalized by the run's own
`sorted_vec_predecessor_ns` — a fixed baseline implementation (binary
search over an uncompressed sorted vec) measured in the same process,
which cancels out CPU-speed differences between the committing machine and
the CI runner. The gate fails when:

  * any normalized query metric regresses by more than REGRESSION_TOLERANCE
    against the committed baseline, or
  * the in-run fused-vs-two-probe predecessor speedup (a fully
    machine-independent ratio) drops below SPEEDUP_FLOOR, or
  * the run used SIMD dispatch (`simd_active`) but fewer than
    KERNEL_SPEEDUP_MIN_KERNELS of the vectorized kernels beat their
    forced-scalar twins by KERNEL_SPEEDUP_FLOOR (an in-run ratio, so it is
    machine-independent too).

`kernel_*` and `bakeoff_*` metrics are excluded from the normalized
baseline diff: kernel rows depend on which dispatch level the runner
supports (a scalar-forced CI leg would trivially "regress" them), and the
bake-off rows exist to be compared against each other within one run, not
across machines. They are still carried in the report for trend reading.

Serve mode (`serve` + one file): checks a `repro serve` report against the
serving cold-start acceptance floors — the measured manifest must be at
least STORE_BYTES_FLOOR, and the lazy `open_mapped` scan must be at least
MAPPED_SPEEDUP_FLOOR times faster than the eager whole-file open. Both are
in-run ratios/sizes, so no baseline file is needed.

Build mode (`build` + one file): checks a `repro scale` report against the
parallel-construction acceptance floors. Determinism is unconditional:
`bpk_drift` must be exactly 0 and `bytes_identical` must be 1 — a parallel
build that produces different bytes is a correctness bug, not a perf
miss. The BUILD_SPEEDUP_FLOOR on the in-run 8-thread-vs-serial build
throughput ratio applies only when the recording machine had at least two
cores (`config.cores`): a one-core machine physically cannot speed the
build up, so its report records throughput and determinism but cannot
attest to scaling — CI's fresh multi-core run enforces the floor there.
"""

import json
import sys

# A normalized metric may grow by at most 25% before the gate fails.
REGRESSION_TOLERANCE = 1.25
# The fused predecessor must stay comfortably ahead of the two-probe
# baseline; the committed measurement is ~1.7x, the acceptance target 1.5x,
# and the floor leaves headroom for shared-runner noise (observed spread on
# busy machines reaches ~±15% even on min-of-N timings).
SPEEDUP_FLOOR = 1.3

# When the fresh run dispatched SIMD kernels, at least this many of them
# must beat their forced-scalar twins by this factor. The committed
# measurements are well above the floor; 1.2x matches the acceptance
# criterion while leaving room for runner noise.
KERNEL_SPEEDUP_FLOOR = 1.2
KERNEL_SPEEDUP_MIN_KERNELS = 2

NORMALIZER = "sorted_vec_predecessor_ns"

# Metric prefixes excluded from the normalized baseline diff (see the
# module docstring).
UNGATED_PREFIXES = ("kernel_", "bakeoff_")

# Serve-mode floors: the measured manifest must be >= 100 MB (so the
# cold-start comparison is about a store that actually hurts to read
# eagerly), and the O(shards) mapped scan must beat the eager whole-file
# open by >= 10x. The committed measurement is orders of magnitude above
# the floor; 10x leaves room for page-cache luck on small CI disks.
STORE_BYTES_FLOOR = 100_000_000
MAPPED_SPEEDUP_FLOOR = 10.0

# Build-mode floor: the 8-thread store build must be >= 1.5x the serial
# one (the paper's §6.6 reports 1.5-2.0x from 2-8 sort threads alone, and
# the shard fan-out multiplies that), enforced only on >= 2-core machines.
BUILD_SPEEDUP_FLOOR = 1.5


def metrics_of(path, schema):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read metrics file: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != schema:
        found = doc.get("schema") if isinstance(doc, dict) else type(doc).__name__
        sys.exit(f"{path}: unexpected schema {found!r} (wanted {schema!r})")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        sys.exit(f"{path}: 'metrics' object missing from the report")
    return metrics


def check_serve(path):
    metrics = metrics_of(path, "grafite-serve-v1")
    failures = []
    store_bytes = metrics.get("store_bytes", 0)
    speedup = metrics.get("mapped_speedup", 0.0)
    print(f"  store_bytes: {store_bytes} (floor {STORE_BYTES_FLOOR})")
    if not isinstance(store_bytes, (int, float)) or store_bytes < STORE_BYTES_FLOOR:
        failures.append(
            f"store_bytes {store_bytes} below the {STORE_BYTES_FLOOR} floor")
    print(f"  mapped_speedup: {speedup:.0f}x (floor {MAPPED_SPEEDUP_FLOOR}x)")
    if not isinstance(speedup, (int, float)) or speedup < MAPPED_SPEEDUP_FLOOR:
        failures.append(
            f"mapped_speedup {speedup}x below the {MAPPED_SPEEDUP_FLOOR}x floor")
    if failures:
        print("\nserve perf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print("serve perf gate passed")


def check_build(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: cannot read report: {e}")
    metrics = metrics_of(path, "grafite-build-v1")
    config = doc.get("config") if isinstance(doc, dict) else None
    cores = config.get("cores", 0) if isinstance(config, dict) else 0
    failures = []

    identical = metrics.get("bytes_identical")
    print(f"  bytes_identical: {identical} (must be 1)")
    if identical != 1:
        failures.append(
            f"bytes_identical is {identical!r}: a parallel build produced "
            "different bytes than the serial build")
    drift = metrics.get("bpk_drift")
    print(f"  bpk_drift: {drift} (must be 0)")
    if not isinstance(drift, (int, float)) or drift != 0:
        failures.append(f"bpk_drift is {drift!r}, must be exactly 0")

    speedup = metrics.get("speedup_at_8_threads", 0.0)
    if isinstance(cores, (int, float)) and cores >= 2:
        print(f"  speedup_at_8_threads: {speedup:.2f}x "
              f"(floor {BUILD_SPEEDUP_FLOOR}x, {cores} cores)")
        if not isinstance(speedup, (int, float)) or speedup < BUILD_SPEEDUP_FLOOR:
            failures.append(
                f"8-thread build speedup {speedup}x below the "
                f"{BUILD_SPEEDUP_FLOOR}x floor on a {cores}-core machine")
    else:
        print(f"  speedup_at_8_threads: {speedup:.2f}x recorded on "
              f"{cores} core(s); floor waived (determinism still gated)")

    if failures:
        print("\nbuild perf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print("build perf gate passed")


def normalized(metrics):
    scale = metrics.get(NORMALIZER)
    if not isinstance(scale, (int, float)):
        sys.exit(f"normalizer metric {NORMALIZER!r} missing from the run")
    if scale <= 0:
        sys.exit(f"normalizer {NORMALIZER} must be positive, got {scale}")
    return {
        key: value / scale
        for key, value in metrics.items()
        if key.endswith("_ns") and key != NORMALIZER
        and not key.startswith(UNGATED_PREFIXES)
    }


def check_kernel_speedups(fresh, failures):
    """In-run SIMD-vs-scalar floor, active only when the run dispatched
    a vector level (a scalar-forced or scalar-only run has nothing to
    prove here)."""
    if not fresh.get("simd_active"):
        level = fresh.get("simd_level", "unknown")
        print(f"  simd dispatch inactive (level {level!r}); kernel floor skipped")
        return
    speedups = {
        key[len("kernel_speedup_"):]: value
        for key, value in fresh.items()
        if key.startswith("kernel_speedup_") and isinstance(value, (int, float))
    }
    passing = sorted(k for k, v in speedups.items() if v >= KERNEL_SPEEDUP_FLOOR)
    for name, value in sorted(speedups.items()):
        marker = "ok" if value >= KERNEL_SPEEDUP_FLOOR else "--"
        print(f"  [{marker}] kernel {name}: {value:.2f}x vs scalar")
    if len(passing) < KERNEL_SPEEDUP_MIN_KERNELS:
        failures.append(
            f"only {len(passing)} kernel(s) reached the {KERNEL_SPEEDUP_FLOOR}x "
            f"SIMD speedup floor (need {KERNEL_SPEEDUP_MIN_KERNELS}); "
            f"speedups: {speedups}")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "serve":
        check_serve(sys.argv[2])
        return
    if len(sys.argv) == 3 and sys.argv[1] == "build":
        check_build(sys.argv[2])
        return
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    baseline = metrics_of(sys.argv[1], "grafite-hotpath-v1")
    fresh = metrics_of(sys.argv[2], "grafite-hotpath-v1")
    base_norm = normalized(baseline)
    fresh_norm = normalized(fresh)

    failures = []
    for key, base_value in sorted(base_norm.items()):
        if key not in fresh_norm:
            failures.append(f"{key}: missing from the fresh run")
            continue
        ratio = fresh_norm[key] / base_value
        marker = "FAIL" if ratio > REGRESSION_TOLERANCE else "ok"
        print(f"  [{marker}] {key}: normalized {base_value:.3f} -> "
              f"{fresh_norm[key]:.3f} ({ratio:.2f}x)")
        if ratio > REGRESSION_TOLERANCE:
            failures.append(
                f"{key}: normalized regression {ratio:.2f}x exceeds "
                f"{REGRESSION_TOLERANCE}x")

    speedup = fresh.get("speedup_fused_vs_two_probe", 0.0)
    print(f"  fused-vs-two-probe speedup: {speedup:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x)")
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"fused predecessor speedup {speedup:.2f}x fell below the "
            f"{SPEEDUP_FLOOR}x floor")

    check_kernel_speedups(fresh, failures)

    if failures:
        print("\nperf smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print("perf smoke passed")


if __name__ == "__main__":
    main()
