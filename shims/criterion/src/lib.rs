//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored because the build environment has no
//! crates.io access.
//!
//! It implements the API subset this workspace's four benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`] — with a plain warm-up + timed-batch loop instead of
//! criterion's statistical machinery. Mean ns/iter (and element throughput
//! when configured) are printed per benchmark. When run by `cargo test`
//! (which passes `--test` to `harness = false` bench binaries), it exits
//! immediately so test runs stay fast. Swap this path dependency for the
//! real crate when network access is available — the benches need no
//! changes.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter, rendered
/// `function/parameter` like the real crate does.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. In test mode every measurement is
        // skipped so the suite stays fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sample count — accepted for API compatibility, unused by the shim's
    /// single timed-batch loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            return self;
        }
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is per-benchmark; nothing extra to flush).
    pub fn finish(&mut self) {}

    fn report(&self, id: &impl Display, b: &Bencher) {
        if b.iters == 0 {
            return;
        }
        let ns_per_iter = b.total.as_nanos() as f64 / b.iters as f64;
        let prefix = if self.name.is_empty() {
            String::new()
        } else {
            format!("{}/", self.name)
        };
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (ns_per_iter / 1e9);
                println!("{prefix}{id}: {ns_per_iter:.1} ns/iter ({per_sec:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (ns_per_iter / 1e9);
                println!("{prefix}{id}: {ns_per_iter:.1} ns/iter ({per_sec:.0} B/s)");
            }
            None => println!("{prefix}{id}: {ns_per_iter:.1} ns/iter"),
        }
    }
}

/// Handed to each benchmark closure; times the routine passed to
/// [`Bencher::iter`].
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: warm-up phase, then batches until the measurement
    /// window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut batch = 1u64;
        while warm_start.elapsed() < self.warm_up {
            for _ in 0..batch {
                std_black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.total = total;
        self.iters = iters;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
