//! Offline stand-in for the [`loom`](https://crates.io/crates/loom)
//! crate, vendored because the build environment has no crates.io access.
//!
//! [`model`] runs a closure under a cooperative scheduler that permits
//! exactly **one runnable thread at a time** and yields at every atomic
//! operation. The scheduler's choice at each yield point — *which*
//! runnable thread goes next — is recorded, and the model is re-executed
//! depth-first until every choice sequence has been explored. A protocol
//! assertion that fails under *any* interleaving therefore fails the
//! test, deterministically, with no timing luck involved.
//!
//! # Fidelity
//!
//! This shim explores interleavings at **sequential-consistency
//! granularity**: every atomic op executes as `SeqCst` regardless of the
//! `Ordering` passed, so it checks *protocol logic* (orderings of
//! operations, publication sequencing, counter totals), not the C++11
//! weak-memory model. A bug that only manifests through `Relaxed`
//! reordering will not be found here — that is what the TSan CI leg is
//! for. The API mirrors the real crate (`loom::model`, `loom::thread`,
//! `loom::sync::atomic`, `loom::sync::Arc`), so swapping in the real
//! dependency when network access is available needs no call-site
//! changes; the only extension is that [`model`] returns the number of
//! distinct interleavings executed, which call sites are free to ignore.
//!
//! # Limits
//!
//! Executions longer than [`MAX_STEPS`] scheduling choices abort with a
//! livelock diagnosis (a `while !flag.load() {}` spin never terminates
//! under exhaustive exploration — model such loops with bounded retries).
//! Deadlocks (every live thread blocked in `join`) panic with a
//! diagnostic rather than hanging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
pub mod sync;
pub mod thread;

use std::panic::resume_unwind;
use std::sync::{Arc, Mutex};

use scheduler::{Choice, Exec};

/// Upper bound on scheduling choices per execution; exceeding it aborts
/// the model with a livelock diagnosis.
pub const MAX_STEPS: usize = 20_000;

/// Runs `f` under every schedule the cooperative scheduler can produce
/// and returns how many distinct interleavings were executed. Panics
/// (re-raising the original payload) as soon as any interleaving panics.
pub fn model<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    // Serialize concurrent `model` calls (parallel #[test] runners): each
    // exploration spawns real threads, and running them one model at a
    // time keeps failure output readable and thread counts bounded.
    static SERIAL: Mutex<()> = Mutex::new(());
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    let f = Arc::new(f);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let exec = Arc::new(Exec::new(prefix));
        let root_exec = Arc::clone(&exec);
        let root_f = Arc::clone(&f);
        let root = std::thread::spawn(move || {
            let id = root_exec.register();
            scheduler::set_ctx(Arc::clone(&root_exec), id);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| root_f()));
            root_exec.finish(id, result.err());
        });
        exec.wait_all_finished();
        let _ = root.join();
        if let Some(payload) = exec.take_panic() {
            resume_unwind(payload);
        }
        prefix = exec.final_schedule();
        // Depth-first advance: bump the deepest unexhausted choice and
        // drop everything after it; an empty stack means the tree is done.
        loop {
            match prefix.last_mut() {
                Some(last) if last.index + 1 < last.alternatives => {
                    last.index += 1;
                    break;
                }
                Some(_) => {
                    prefix.pop();
                }
                None => return executions,
            }
        }
    }
}
