//! The cooperative scheduler behind [`crate::model`]: one runnable thread
//! at a time, a recorded choice at every branching yield point, and a
//! condvar turnstile that parks every thread that is not `current`.

use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One scheduling decision: which of the `alternatives` runnable threads
/// was picked (by index into the sorted runnable set).
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    /// Index into the runnable set at this decision point.
    pub index: usize,
    /// How many threads were runnable (the branching factor).
    pub alternatives: usize,
}

/// Panic payload used to unwind parked threads when the model aborts; the
/// driver recognizes and discards it in favour of the primary payload.
struct Aborted;

#[derive(Default)]
struct State {
    /// Thread id currently allowed to run.
    current: usize,
    /// Per-thread completion flags.
    finished: Vec<bool>,
    /// Per-thread join dependency (`Some(t)` = parked until `t` finishes).
    blocked_on: Vec<Option<usize>>,
    /// Replay prefix plus newly recorded decisions.
    schedule: Vec<Choice>,
    /// Next schedule position to consume.
    pos: usize,
    /// Yield points taken this execution (bounds livelocks: a lone
    /// spinning thread branches nowhere, so `schedule.len()` can't).
    steps: usize,
    /// Set on panic/deadlock/livelock: every parked thread unwinds.
    abort: bool,
    /// The primary panic payload (first failure wins).
    panic: Option<Box<dyn Any + Send>>,
}

impl State {
    fn schedulable(&self) -> Vec<usize> {
        (0..self.finished.len())
            .filter(|&i| !self.finished[i] && self.blocked_on[i].is_none())
            .collect()
    }

    /// Picks the next thread to run, consuming or recording a [`Choice`]
    /// when more than one candidate exists. `None` means nothing can run.
    fn choose(&mut self) -> Option<usize> {
        let cands = self.schedulable();
        if cands.is_empty() {
            return None;
        }
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        let index = if self.pos < self.schedule.len() {
            let c = self.schedule[self.pos];
            debug_assert_eq!(
                c.alternatives,
                cands.len(),
                "replay diverged: the model closure must be deterministic"
            );
            c.index
        } else {
            self.schedule.push(Choice {
                index: 0,
                alternatives: cands.len(),
            });
            0
        };
        self.pos += 1;
        Some(cands[index])
    }

    fn all_finished(&self) -> bool {
        !self.finished.is_empty() && self.finished.iter().all(|&f| f)
    }
}

/// One exploration execution: the shared scheduler state plus the
/// turnstile condvar.
pub struct Exec {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// Binds the current OS thread to `exec` as model thread `id`.
pub fn set_ctx(exec: Arc<Exec>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, id)));
    // A freshly spawned model thread must not run before it is scheduled;
    // the root (id 0) starts as `current` and falls through immediately.
    CTX.with(|c| {
        let ctx = c.borrow();
        let (exec, id) = ctx.as_ref().expect("ctx just set");
        exec.wait_for_turn(*id);
    });
}

/// The current thread's model binding, if it runs under [`crate::model`].
pub fn ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Yield point: called before every atomic operation. Outside a model
/// this is a no-op, so the shim atomics behave as plain `SeqCst` atomics.
pub fn yield_now() {
    if let Some((exec, id)) = ctx() {
        exec.yield_turn(id);
    }
}

impl Exec {
    /// A fresh execution replaying `prefix` before exploring new choices.
    pub fn new(prefix: Vec<Choice>) -> Self {
        Exec {
            state: Mutex::new(State {
                schedule: prefix,
                ..State::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread and returns its id. Called by the
    /// *spawning* thread so ids are assigned deterministically.
    pub fn register(&self) -> usize {
        let mut s = self.lock();
        let id = s.finished.len();
        s.finished.push(false);
        s.blocked_on.push(None);
        id
    }

    /// Parks until this thread is `current` (or the model aborts).
    fn wait_for_turn(&self, me: usize) {
        let mut s = self.lock();
        while s.current != me {
            if s.abort {
                drop(s);
                std::panic::panic_any(Aborted);
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.abort {
            drop(s);
            std::panic::panic_any(Aborted);
        }
    }

    /// One scheduling step: hand the turn to a chosen thread (possibly
    /// this one again) and park until it comes back.
    fn yield_turn(&self, me: usize) {
        let mut s = self.lock();
        if s.abort {
            drop(s);
            std::panic::panic_any(Aborted);
        }
        s.steps += 1;
        if s.steps > crate::MAX_STEPS {
            s.abort = true;
            if s.panic.is_none() {
                s.panic = Some(Box::new(
                    "loom shim: execution exceeded MAX_STEPS scheduling choices — \
                     likely an unbounded spin loop; exhaustive exploration cannot \
                     terminate it"
                        .to_string(),
                ));
            }
            self.cv.notify_all();
            drop(s);
            std::panic::panic_any(Aborted);
        }
        // `me` is running, hence schedulable: choose() cannot fail here.
        let next = s.choose().expect("running thread is always schedulable");
        s.current = next;
        self.cv.notify_all();
        drop(s);
        self.wait_for_turn(me);
    }

    /// Parks this thread until `target` finishes (scheduler-level join).
    pub fn join_wait(&self, me: usize, target: usize) {
        let mut s = self.lock();
        if s.finished.get(target).copied().unwrap_or(true) {
            return;
        }
        s.blocked_on[me] = Some(target);
        match s.choose() {
            Some(next) => s.current = next,
            None => {
                s.abort = true;
                if s.panic.is_none() {
                    s.panic = Some(Box::new(
                        "loom shim: deadlock — every live thread is blocked in join".to_string(),
                    ));
                }
            }
        }
        self.cv.notify_all();
        drop(s);
        self.wait_for_turn(me);
    }

    /// Marks `me` finished, releases its joiners, stores a panic payload
    /// if it unwound, and hands the turn onward.
    pub fn finish(&self, me: usize, panicked: Option<Box<dyn Any + Send>>) {
        let mut s = self.lock();
        s.finished[me] = true;
        for b in s.blocked_on.iter_mut() {
            if *b == Some(me) {
                *b = None;
            }
        }
        if let Some(payload) = panicked {
            s.abort = true;
            // The secondary `Aborted` unwinds of parked threads must not
            // shadow the primary failure.
            if s.panic.is_none() && !payload.is::<Aborted>() {
                s.panic = Some(payload);
            }
        }
        if let Some(next) = s.choose() {
            s.current = next;
        } else if !s.all_finished() {
            s.abort = true;
            if s.panic.is_none() {
                s.panic = Some(Box::new(
                    "loom shim: deadlock — live threads remain but none is runnable".to_string(),
                ));
            }
        }
        self.cv.notify_all();
    }

    /// Blocks the driver until every registered thread has finished.
    pub fn wait_all_finished(&self) {
        let mut s = self.lock();
        while !s.all_finished() {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The primary panic payload, if any interleaving failed.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.lock().panic.take()
    }

    /// The full choice record of this execution (replay prefix included).
    pub fn final_schedule(&self) -> Vec<Choice> {
        self.lock().schedule.clone()
    }
}
