//! Model-aware synchronization primitives: `Arc` (re-exported — cloning
//! and dropping are not scheduling events at this granularity) and the
//! atomic wrappers.

pub use std::sync::Arc;

/// Atomic types that yield to the model scheduler before every operation.
pub mod atomic {
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    use crate::scheduler::yield_now;

    macro_rules! atomic_shim {
        ($(#[$doc:meta])* $name:ident, $std:ty, $val:ty) => {
            $(#[$doc])*
            ///
            /// Every operation is a scheduling point and executes at
            /// `SeqCst` regardless of the `Ordering` argument (the shim
            /// explores interleavings, not weak-memory reorderings).
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $val) -> Self {
                    Self(<$std>::new(v))
                }

                /// Loads the value (scheduling point).
                pub fn load(&self, _order: Ordering) -> $val {
                    yield_now();
                    self.0.load(SeqCst)
                }

                /// Stores a value (scheduling point).
                pub fn store(&self, v: $val, _order: Ordering) {
                    yield_now();
                    self.0.store(v, SeqCst)
                }

                /// Swaps the value, returning the previous one
                /// (scheduling point).
                pub fn swap(&self, v: $val, _order: Ordering) -> $val {
                    yield_now();
                    self.0.swap(v, SeqCst)
                }

                /// Compare-and-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$val, $val> {
                    yield_now();
                    self.0.compare_exchange(current, new, SeqCst, SeqCst)
                }
            }
        };
    }

    macro_rules! atomic_arith {
        ($name:ident, $val:ty) => {
            impl $name {
                /// Adds, returning the previous value (scheduling point).
                pub fn fetch_add(&self, v: $val, _order: Ordering) -> $val {
                    yield_now();
                    self.0.fetch_add(v, SeqCst)
                }

                /// Subtracts, returning the previous value (scheduling
                /// point).
                pub fn fetch_sub(&self, v: $val, _order: Ordering) -> $val {
                    yield_now();
                    self.0.fetch_sub(v, SeqCst)
                }

                /// Bitwise-or, returning the previous value (scheduling
                /// point).
                pub fn fetch_or(&self, v: $val, _order: Ordering) -> $val {
                    yield_now();
                    self.0.fetch_or(v, SeqCst)
                }

                /// Maximum, returning the previous value (scheduling
                /// point).
                pub fn fetch_max(&self, v: $val, _order: Ordering) -> $val {
                    yield_now();
                    self.0.fetch_max(v, SeqCst)
                }
            }
        };
    }

    atomic_shim!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    atomic_arith!(AtomicU64, u64);

    atomic_shim!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    atomic_arith!(AtomicUsize, usize);

    atomic_shim!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    atomic_arith!(AtomicU32, u32);

    atomic_shim!(
        /// Model-aware `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );

    impl AtomicBool {
        /// Bitwise-or, returning the previous value (scheduling point).
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            yield_now();
            self.0.fetch_or(v, SeqCst)
        }
    }
}
