//! Model-aware threads: `spawn`/`join` integrate with the cooperative
//! scheduler so a `join` parks the joiner *in the model*, not just the OS.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::scheduler::{self, Exec};

/// Handle to a model thread, returned by [`spawn`].
pub struct JoinHandle<T> {
    os: std::thread::JoinHandle<Option<T>>,
    exec: Option<Arc<Exec>>,
    id: usize,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model the wait is a scheduling event (other threads keep being
    /// explored); a thread that panicked yields `Err` with a placeholder
    /// payload — the model itself re-raises the original panic.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(exec), Some((_, me))) = (&self.exec, scheduler::ctx()) {
            exec.join_wait(me, self.id);
        }
        match self.os.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread panicked".to_string())),
            Err(e) => Err(e),
        }
    }
}

/// Spawns a model thread. Inside [`crate::model`] the child is registered
/// with the scheduler and does not run a single instruction until it is
/// scheduled; outside a model this degrades to a plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match scheduler::ctx() {
        Some((exec, _)) => {
            // Registered by the *spawner* so ids are deterministic.
            let id = exec.register();
            let child_exec = Arc::clone(&exec);
            let os = std::thread::spawn(move || {
                scheduler::set_ctx(Arc::clone(&child_exec), id);
                let result = catch_unwind(AssertUnwindSafe(f));
                let (value, payload) = match result {
                    Ok(v) => (Some(v), None),
                    Err(p) => (None, Some(p)),
                };
                child_exec.finish(id, payload);
                value
            });
            JoinHandle {
                os,
                exec: Some(exec),
                id,
            }
        }
        None => {
            let os = std::thread::spawn(move || Some(f()));
            JoinHandle {
                os,
                exec: None,
                id: 0,
            }
        }
    }
}

/// A scheduling point with no memory effect (mirrors
/// `loom::thread::yield_now`).
pub fn yield_now() {
    scheduler::yield_now();
}
