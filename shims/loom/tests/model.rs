//! Behavioral tests for the loom shim itself: exploration actually
//! branches, protocol assertions hold across every interleaving, and a
//! deliberately broken protocol is caught.

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

#[test]
fn two_increments_always_total_two_and_exploration_branches() {
    let executions = loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let a = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        };
        let b = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
    assert!(
        executions > 1,
        "two unordered increments must produce more than one interleaving, got {executions}"
    );
}

#[test]
fn publish_then_flag_holds_in_every_interleaving() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicBool::new(false));
        let writer = {
            let (data, ready) = (Arc::clone(&data), Arc::clone(&ready));
            thread::spawn(move || {
                data.store(42, Ordering::Release);
                ready.store(true, Ordering::Release);
            })
        };
        if ready.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Acquire), 42);
        }
        writer.join().unwrap();
    });
}

#[test]
fn broken_publication_is_caught() {
    // Flag first, data second: some interleaving observes the flag with
    // stale data, and the model must surface that execution as a failure.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let ready = Arc::new(AtomicBool::new(false));
            let writer = {
                let (data, ready) = (Arc::clone(&data), Arc::clone(&ready));
                thread::spawn(move || {
                    ready.store(true, Ordering::Release); // bug: flag before data
                    data.store(42, Ordering::Release);
                })
            };
            if ready.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Acquire), 42);
            }
            writer.join().unwrap();
        });
    }));
    assert!(
        result.is_err(),
        "the flag-before-data protocol must fail under some interleaving"
    );
}

#[test]
fn join_returns_the_thread_value() {
    loom::model(|| {
        let h = thread::spawn(|| 7u64);
        assert_eq!(h.join().unwrap(), 7);
    });
}

#[test]
fn compare_exchange_is_exact() {
    loom::model(|| {
        let v = Arc::new(AtomicU64::new(0));
        let racer = {
            let v = Arc::clone(&v);
            thread::spawn(move || v.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire))
        };
        let mine = v.compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire);
        let theirs = racer.join().unwrap();
        // Exactly one CAS wins in every interleaving.
        assert!(mine.is_ok() ^ theirs.is_ok());
        let end = v.load(Ordering::Acquire);
        assert!(end == 1 || end == 2);
    });
}

#[test]
fn shim_atomics_work_outside_a_model() {
    let v = AtomicU64::new(3);
    v.fetch_add(4, Ordering::SeqCst);
    assert_eq!(v.load(Ordering::SeqCst), 7);
}
