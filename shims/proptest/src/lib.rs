//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored because the build environment has no crates.io access.
//!
//! It implements exactly the subset this workspace's property tests use:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`ProptestConfig::with_cases`], [`any`], integer/float range strategies,
//! tuple strategies, and [`prop::collection::vec`]. Generation is
//! deterministic (seeded per test by name via SplitMix64) and there is no
//! shrinking: a failing case panics with the generating seed so it can be
//! replayed. Swap this path dependency for the real crate when network
//! access is available — the call sites need no changes.

use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test body is run with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // 128-bit multiply-shift; bias is < 2^-64, irrelevant for testing.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a), honouring
/// `PROPTEST_SEED` for replaying a reported failure.
pub fn rng_for(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return TestRng::new(seed);
        }
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    TestRng::new(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Bias towards edge values: real proptest over-samples them
                // too, and the no-false-negative tests want extremes.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MAX - 1,
                    3 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// A length range for collection strategies: `[lo, hi)`, mirroring
        /// proptest's `SizeRange`. Exists as a concrete type (rather than a
        /// `Strategy<Value = usize>` bound) so bare `1..400` literals infer
        /// `usize` through the single `From` impl.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
        #[derive(Clone, Copy, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `Vec` strategy: a length in `len` values drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.lo + rng.below((self.len.hi - self.len.lo) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>` with a target size in a
        /// [`SizeRange`].
        #[derive(Clone, Copy, Debug)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `BTreeSet` strategy: draws until the target size is reached (with
        /// a bounded number of duplicate retries, like the real crate).
        pub fn btree_set<S>(element: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.lo + rng.below((self.len.hi - self.len.lo) as u64) as usize;
                let mut set = std::collections::BTreeSet::new();
                let mut misses = 0usize;
                while set.len() < n && misses < 8 * n + 64 {
                    if !set.insert(self.element.generate(rng)) {
                        misses += 1;
                    }
                }
                set
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// A failed property-test assertion. The real crate distinguishes
/// failures from rejections; this shim only ever fails.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Asserts a condition inside a property test; on failure returns
/// `Err(TestCaseError)` from the enclosing function, like the real crate.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format_args!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a property test; `Err`-returning like
/// [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                left,
                right,
                format_args!($($fmt)+)
            )));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for each of the configured number of
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}
