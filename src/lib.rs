//! # grafite — meta-crate for the Grafite range-filter reproduction
//!
//! This crate re-exports the public API of the whole workspace, which
//! reproduces *Grafite: Taming Adversarial Queries with Optimal Range
//! Filters* (Costa, Ferragina, Vinciguerra — SIGMOD 2024) in Rust:
//!
//! * [`grafite_core`] — the paper's contributions ([`GrafiteFilter`] §3,
//!   [`BucketingFilter`] §4) **and the workspace-wide contract**: the
//!   [`RangeFilter`] query trait (single + batched queries), the
//!   [`FilterConfig`]/[`BuildableFilter`] construction protocol, the
//!   [`FilterSpec`]→builder [`Registry`], and the [`KeyCodec`] embedding
//!   for non-integer keys.
//! * [`grafite_succinct`] — Elias–Fano, rank/select bit vectors, Golomb–Rice.
//! * [`grafite_hash`] — pairwise-independent and locality-preserving hashing.
//! * [`grafite_bloom`] — Bloom-filter substrates and the trivial baseline.
//! * [`grafite_fst`] — the Fast Succinct Trie behind SuRF and Proteus.
//! * [`grafite_filters`] — the competitor filters of the paper's evaluation,
//!   plus [`standard_registry`] assembling all eleven configurations.
//! * [`grafite_workloads`] — the datasets and query workloads of §6.
//! * [`grafite_store`] — the serving layer: [`FilterStore`] shards the key
//!   space across per-shard filters of any family, serves immutable
//!   lock-free [`Snapshot`]s to any number of reader threads, applies
//!   [`Update`] batches by rebuilding only dirty shards behind an atomic
//!   snapshot swap, round-trips whole stores through a versioned
//!   multi-shard manifest, and cold-starts lazily from a saved manifest
//!   file via [`FilterStore::open_mapped`] (shards materialize on first
//!   query — a multi-gigabyte store opens in milliseconds).
//! * [`grafite_server`] — the network front end: a dependency-free TCP
//!   server ([`serve`]) speaking a length-prefixed binary protocol over a
//!   shared [`FilterStore`], coalescing concurrent probes into the sorted
//!   batch path, hot-reloading manifests without dropping in-flight
//!   queries, and exporting operational telemetry (qps, latency
//!   histograms, observed-FP estimation) as JSON — plus the matching
//!   [`Client`] and the `grafite-server` binary (`gen`/`serve`/`smoke`).
//!
//! ## Quickstart
//!
//! Every filter builds from one [`FilterConfig`] through the
//! [`BuildableFilter`] protocol:
//!
//! ```
//! use grafite::{BuildableFilter, FilterConfig, GrafiteFilter, RangeFilter};
//!
//! let keys: Vec<u64> = vec![9, 48, 50, 191, 226, 269, 335, 446, 487, 511];
//! // Budget of 16 bits per key: FPP for ranges of size l is <= l / 2^14.
//! let cfg = FilterConfig::new(&keys).bits_per_key(16.0);
//! let filter = GrafiteFilter::build(&cfg).unwrap();
//! assert!(filter.may_contain_range(48, 50)); // a true positive: no false negatives, ever
//!
//! // Batched queries return exactly the per-query answers; Grafite resolves
//! // large batches in one forward pass over its Elias–Fano codes.
//! let mut out = Vec::new();
//! filter.may_contain_ranges(&[(0, 8), (48, 50)], &mut out);
//! assert_eq!(out, [false, true]);
//! ```
//!
//! The same config drives every other filter of the paper, either through
//! its typed [`BuildableFilter`] implementation (per-filter knobs are typed
//! `Tuning` structs — no strings anywhere) or uniformly through the
//! registry:
//!
//! ```
//! use grafite::{standard_registry, FilterConfig, FilterSpec};
//!
//! let keys: Vec<u64> = (0..2000u64).map(|i| i * 11_400_714_819).collect();
//! let cfg = FilterConfig::new(&keys).bits_per_key(18.0).max_range(64);
//! let registry = standard_registry();
//! for spec in FilterSpec::ALL {
//!     let filter = registry.build(spec, &cfg).expect("feasible at 18 bits/key");
//!     assert!(filter.may_contain(keys[7]), "{} lost a key", filter.name());
//! }
//! ```
//!
//! ## Persistence
//!
//! Every filter also speaks the [`PersistentFilter`] protocol over a
//! dependency-free, versioned flat-byte format (see
//! [`grafite_core::persist`]): build offline, [`PersistentFilter::to_bytes`]
//! the blob to disk or the network, and revive it anywhere with
//! [`Registry::load`] — rank/select directories travel inside the blob, so
//! loading never rebuilds anything, and
//! [`GrafiteFilterView`](grafite_core::GrafiteFilterView) answers queries
//! zero-copy straight out of a loaded word buffer:
//!
//! ```
//! use grafite::{standard_registry, FilterConfig, FilterSpec, PersistentFilter};
//!
//! let keys: Vec<u64> = (0..2000u64).map(|i| i * 11_400_714_819).collect();
//! let cfg = FilterConfig::new(&keys).bits_per_key(18.0);
//! let registry = standard_registry();
//! let built = registry.build(FilterSpec::Grafite, &cfg).unwrap();
//!
//! let blob = built.to_bytes();                  // ship this to your shards
//! let served = registry.load(&blob).unwrap();   // self-describing: no spec needed
//! assert!(served.may_contain(keys[7]));
//! // Measured space — serialized bits over keys — is the honest
//! // bits-per-key figure the bench harness reports.
//! assert_eq!(served.serialized_bits(), blob.len() * 8);
//! ```
//!
//! ## Serving
//!
//! Production serving wants a lifecycle — build → serve → update → reload —
//! not a bare filter value. [`FilterStore`] provides it over every family:
//!
//! ```
//! use grafite::{standard_registry, FamilySpec, FilterSpec, FilterStore, StoreConfig, Update};
//!
//! let keys: Vec<u64> = (0..4000u64).map(|i| i * 99_991).collect();
//! let registry = standard_registry();
//! let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite)).bits_per_key(14.0);
//! let store = FilterStore::build(&registry, config, &keys).unwrap();
//!
//! let snap = store.snapshot();              // immutable, lock-free to query
//! store.apply(&[Update::Insert(7), Update::Delete(99_991)]).unwrap();
//! assert!(store.may_contain(7));            // the new snapshot serves the insert
//! assert!(snap.may_contain(99_991));        // old snapshots never change
//!
//! let reopened = FilterStore::open(&registry, &store.to_bytes()).unwrap();
//! assert_eq!(reopened.num_keys(), store.num_keys());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use grafite_bloom;
pub use grafite_core;
pub use grafite_filters;
pub use grafite_fst;
pub use grafite_hash;
pub use grafite_server;
pub use grafite_store;
pub use grafite_succinct;
pub use grafite_workloads;

pub use grafite_core::{
    BucketingFilter, BuildableFilter, FilterConfig, FilterError, FilterSpec, GrafiteFilter,
    KeyCodec, PersistentFilter, RangeFilter, Registry, StringGrafite,
};
pub use grafite_filters::standard_registry;
pub use grafite_server::{serve, Client, ServerHandle};
pub use grafite_store::{
    DynRangeFilter, FamilySpec, FilterStore, Partitioning, Snapshot, StoreConfig, Update,
};
