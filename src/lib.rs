//! # grafite — meta-crate for the Grafite range-filter reproduction
//!
//! This crate re-exports the public API of the whole workspace, which
//! reproduces *Grafite: Taming Adversarial Queries with Optimal Range
//! Filters* (Costa, Ferragina, Vinciguerra — SIGMOD 2024) in Rust:
//!
//! * [`grafite_core`] — the paper's contributions: the [`GrafiteFilter`]
//!   optimal range filter (§3) and the [`BucketingFilter`] heuristic (§4).
//! * [`grafite_succinct`] — Elias–Fano, rank/select bit vectors, Golomb–Rice.
//! * [`grafite_hash`] — pairwise-independent and locality-preserving hashing.
//! * [`grafite_bloom`] — Bloom-filter substrates and the trivial baseline.
//! * [`grafite_fst`] — the Fast Succinct Trie behind SuRF and Proteus.
//! * [`grafite_filters`] — the competitor filters of the paper's evaluation.
//! * [`grafite_workloads`] — the datasets and query workloads of §6.
//!
//! ## Quickstart
//!
//! ```
//! use grafite::{GrafiteFilter, RangeFilter};
//!
//! let keys: Vec<u64> = vec![9, 48, 50, 191, 226, 269, 335, 446, 487, 511];
//! // Budget of 16 bits per key: FPP for ranges of size l is <= l / 2^14.
//! let filter = GrafiteFilter::builder().bits_per_key(16.0).build(&keys).unwrap();
//! assert!(filter.may_contain_range(48, 50)); // a true positive: no false negatives, ever
//! ```

pub use grafite_bloom;
pub use grafite_core;
pub use grafite_filters;
pub use grafite_fst;
pub use grafite_hash;
pub use grafite_succinct;
pub use grafite_workloads;

pub use grafite_core::{BucketingFilter, GrafiteFilter, RangeFilter};
