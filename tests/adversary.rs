//! The paper's threat model made concrete (§1, §6.7): "malicious users can
//! artificially issue these queries with just the knowledge of (a subset
//! of) the keys", aiming to drive the false-positive rate — and hence the
//! disk/network traffic the filter guards — towards 100%.
//!
//! The adversary here knows 10% of the keys and crafts empty ranges hugging
//! them as tightly as possible. Heuristic filters are defeated; Grafite's
//! FPR cannot exceed its `ℓ/2^(B−2)` bound *whatever* the adversary does,
//! because the bound only uses the randomness of the drawn hash, never the
//! query distribution.

use grafite::{BucketingFilter, GrafiteFilter, RangeFilter};
use grafite_filters::{Snarf, SuffixMode, Surf};
use grafite_workloads::{datasets::Dataset, generate};

/// Builds the tightest empty ranges next to each leaked key.
fn adversarial_queries(all_keys: &[u64], leaked: &[u64], l: u64) -> Vec<(u64, u64)> {
    let mut queries = Vec::new();
    for &k in leaked {
        // Hug the key from above: [k+1, k+l]; keep only truly empty ranges
        // (the adversary can check emptiness against their leaked subset
        // only, but we filter exactly to measure a true FPR).
        let lo = k + 1;
        let hi = k + l;
        let i = all_keys.partition_point(|&x| x < lo);
        if i >= all_keys.len() || all_keys[i] > hi {
            queries.push((lo, hi));
        }
        // And from below.
        let lo = k.saturating_sub(l);
        let hi = k - 1;
        if k > 0 {
            let i = all_keys.partition_point(|&x| x < lo);
            if i >= all_keys.len() || all_keys[i] > hi {
                queries.push((lo, hi));
            }
        }
    }
    queries
}

#[test]
fn adversary_with_leaked_keys_cannot_break_grafite() {
    let keys = generate(Dataset::Uniform, 30_000, 77);
    let leaked: Vec<u64> = keys.iter().copied().step_by(10).collect();
    let l = 32u64;
    let queries = adversarial_queries(&keys, &leaked, l);
    assert!(queries.len() > 4000, "adversary found too few empty ranges");

    let budget = 18.0;
    let grafite = GrafiteFilter::builder()
        .bits_per_key(budget)
        .build(&keys)
        .unwrap();
    let snarf = Snarf::new(&keys, budget).unwrap();
    let surf = Surf::new(&keys, SuffixMode::Real { bits: 7 }).unwrap();
    let bucketing = BucketingFilter::builder()
        .bits_per_key(budget)
        .build(&keys)
        .unwrap();

    let fpr = |f: &dyn RangeFilter| {
        queries
            .iter()
            .filter(|&&(a, b)| f.may_contain_range(a, b))
            .count() as f64
            / queries.len() as f64
    };

    // The heuristics are routed around: almost every crafted query passes.
    assert!(fpr(&snarf) > 0.95, "SNARF under attack: {}", fpr(&snarf));
    assert!(fpr(&surf) > 0.95, "SuRF under attack: {}", fpr(&surf));
    assert!(
        fpr(&bucketing) > 0.95,
        "Bucketing under attack: {}",
        fpr(&bucketing)
    );

    // Grafite holds its Corollary 3.5 bound against the same adversary.
    let bound = grafite.fpp_for_range_size(l);
    let got = fpr(&grafite);
    assert!(
        got <= bound * 1.6 + 0.002,
        "Grafite under attack: {got} vs bound {bound}"
    );
}

/// Even an adversary who knows *every* key (and the filter's public
/// parameters except the hash seed) stays below the bound in expectation
/// over the seed; with a pinned seed we simply verify the bound on the
/// strongest query set they could craft without evaluating h.
#[test]
fn full_knowledge_adversary_still_bounded() {
    let keys = generate(Dataset::Uniform, 20_000, 5);
    let l = 64u64;
    let queries = adversarial_queries(&keys, &keys, l);
    let grafite = GrafiteFilter::builder()
        .bits_per_key(20.0)
        .seed(0xFEED)
        .build(&keys)
        .unwrap();
    let fps = queries
        .iter()
        .filter(|&&(a, b)| grafite.may_contain_range(a, b))
        .count();
    let fpr = fps as f64 / queries.len() as f64;
    let bound = grafite.fpp_for_range_size(l);
    assert!(fpr <= bound * 1.6 + 0.002, "FPR {fpr} vs bound {bound}");
}
