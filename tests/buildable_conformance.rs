//! Trait-level conformance of the unified construction API: every
//! [`FilterSpec`] built through the new `FilterConfig` protocol upholds the
//! `RangeFilter` contract — no false negatives on point, range, and
//! edge-of-universe queries, and batched answers identical to the
//! one-at-a-time path. Also pins the protocol's typed entry points
//! (`BuildableFilter::build`/`build_with`, per-filter tunings) at compile
//! time and the registry's error reporting at run time.

use grafite::grafite_core::registry::{FilterSpec, Registry};
use grafite::grafite_core::{BuildableFilter, FilterConfig, FilterError, RangeFilter};
use grafite::grafite_filters::standard_registry;

/// Keys stressing universe edges, adjacent runs, duplicates, and a
/// pseudo-random spread.
fn conformance_keys() -> Vec<u64> {
    let mut keys = vec![
        0,
        1,
        2,
        255,
        256,
        257,
        (1 << 33) - 1,
        1 << 33,
        u64::MAX - 2,
        u64::MAX - 1,
        u64::MAX,
        42,
        42, // duplicate
    ];
    let mut state = 0xC0DEu64;
    for _ in 0..500 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        keys.push(state);
    }
    keys
}

/// Empty ranges for the auto-tuners' samples.
fn empty_sample(sorted: &[u64]) -> Vec<(u64, u64)> {
    let mut sample = Vec::new();
    let mut state = 3u64;
    while sample.len() < 64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = state;
        let Some(b) = a.checked_add(31) else { continue };
        let i = sorted.partition_point(|&k| k < a);
        if i < sorted.len() && sorted[i] <= b {
            continue;
        }
        sample.push((a, b));
    }
    sample
}

/// A mixed, sorted batch: key-bounded (non-empty), random, and
/// edge-of-universe queries.
fn mixed_batch(keys: &[u64]) -> Vec<(u64, u64)> {
    let mut queries: Vec<(u64, u64)> = vec![
        (0, 0),
        (0, 63),
        (u64::MAX, u64::MAX),
        (u64::MAX - 63, u64::MAX),
    ];
    for (i, &k) in keys.iter().enumerate().step_by(3) {
        queries.push((k.saturating_sub((i as u64) % 48), k.saturating_add(3)));
    }
    let mut state = 0xBEEFu64;
    for _ in 0..300 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        queries.push((state, state.saturating_add(state % 900)));
    }
    queries.sort_unstable();
    queries
}

#[test]
fn every_spec_builds_and_has_no_false_negatives() {
    let keys = conformance_keys();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let sample = empty_sample(&sorted);
    let registry = standard_registry();

    for budget in [12.0, 20.0] {
        let cfg = FilterConfig::new(&keys)
            .bits_per_key(budget)
            .max_range(64)
            .sample(&sample)
            .seed(13);
        for spec in FilterSpec::ALL {
            let filter = registry
                .build(spec, &cfg)
                .unwrap_or_else(|e| panic!("{} failed at {budget} bits/key: {e}", spec.label()));
            assert_eq!(filter.num_keys(), keys.len(), "{}", spec.label());
            assert!(filter.bits_per_key() > 0.0, "{}", spec.label());
            for &k in &keys {
                assert!(
                    filter.may_contain(k),
                    "{} at {budget} bpk: point false negative on {k}",
                    spec.label()
                );
                for width in [0u64, 1, 3, 63] {
                    let (a, b) = (k.saturating_sub(width), k.saturating_add(width));
                    assert!(
                        filter.may_contain_range(a, b),
                        "{} at {budget} bpk: range false negative on [{a}, {b}]",
                        spec.label()
                    );
                }
            }
            // Edge-of-universe: keys 0 and u64::MAX are in the set.
            assert!(filter.may_contain_range(0, 0), "{}", spec.label());
            assert!(
                filter.may_contain_range(u64::MAX, u64::MAX),
                "{}",
                spec.label()
            );
        }
    }
}

#[test]
fn batch_answers_equal_one_at_a_time_for_every_spec() {
    let keys = conformance_keys();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let sample = empty_sample(&sorted);
    let queries = mixed_batch(&sorted);
    let registry = standard_registry();

    let cfg = FilterConfig::new(&keys)
        .bits_per_key(16.0)
        .max_range(64)
        .sample(&sample)
        .seed(7);
    for spec in FilterSpec::ALL {
        let filter = registry.build(spec, &cfg).unwrap();
        let singles: Vec<bool> = queries
            .iter()
            .map(|&(a, b)| filter.may_contain_range(a, b))
            .collect();
        let mut batched = vec![true; 3]; // stale: must be cleared by the call
        filter.may_contain_ranges(&queries, &mut batched);
        assert_eq!(
            batched,
            singles,
            "{}: batch answers differ from the one-at-a-time path",
            spec.label()
        );
    }
}

#[test]
fn surf_declines_below_its_floor_with_a_typed_error() {
    let keys = conformance_keys();
    let cfg = FilterConfig::new(&keys).bits_per_key(8.0).max_range(64);
    let registry = standard_registry();
    for spec in [FilterSpec::SurfReal, FilterSpec::SurfHash] {
        match registry.build(spec, &cfg) {
            Err(FilterError::BudgetBelowFloor { requested, floor }) => {
                assert_eq!(requested, 8.0);
                assert!(floor > 8.0);
            }
            Err(e) => panic!("{}: wrong error {e}", spec.label()),
            Ok(_) => panic!("{}: built below its floor", spec.label()),
        }
    }
    // Every other spec is feasible at 8 bits/key.
    for spec in FilterSpec::ALL {
        if matches!(spec, FilterSpec::SurfReal | FilterSpec::SurfHash) {
            continue;
        }
        assert!(
            registry.build(spec, &cfg).is_ok(),
            "{} infeasible at 8 bpk",
            spec.label()
        );
    }
}

#[test]
fn empty_and_single_key_sets_conform() {
    let sample = [(100u64, 131u64)];
    let registry = standard_registry();
    for spec in FilterSpec::ALL {
        let single = [777u64];
        let cfg = FilterConfig::new(&single)
            .bits_per_key(16.0)
            .max_range(64)
            .sample(&sample);
        let filter = registry.build(spec, &cfg).unwrap();
        assert!(filter.may_contain(777), "{}", spec.label());
        assert!(filter.may_contain_range(700, 800), "{}", spec.label());

        let cfg = FilterConfig::new(&[])
            .bits_per_key(16.0)
            .max_range(64)
            .sample(&sample);
        let filter = registry.build(spec, &cfg).unwrap();
        assert!(
            !filter.may_contain_range(0, u64::MAX),
            "{} claims a key in an empty set",
            spec.label()
        );
        let mut out = Vec::new();
        filter.may_contain_ranges(&[(0, 10), (5, u64::MAX)], &mut out);
        assert_eq!(out, [false, false], "{} empty-set batch", spec.label());
    }
}

#[test]
fn typed_build_entry_points_compile_and_agree() {
    use grafite::grafite_core::{GrafiteFilter, GrafiteTuning, StringGrafite};
    use grafite::grafite_filters::{
        Proteus, REncoder, REncoderTuning, REncoderVariant, Rosetta, Snarf, SuffixStyle, Surf,
        SurfTuning,
    };

    // Generic construction through the protocol — the compile-time check
    // that every filter really is `BuildableFilter`.
    fn build_generic<F: BuildableFilter>(cfg: &FilterConfig<'_>) -> F {
        F::build(cfg).unwrap_or_else(|e| panic!("build failed: {e}"))
    }

    let keys = conformance_keys();
    let sample = {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        empty_sample(&sorted)
    };
    let cfg = FilterConfig::new(&keys)
        .bits_per_key(16.0)
        .max_range(64)
        .sample(&sample)
        .seed(3);

    let filters: Vec<Box<dyn RangeFilter>> = vec![
        Box::new(build_generic::<GrafiteFilter>(&cfg)),
        Box::new(build_generic::<Snarf>(&cfg)),
        Box::new(build_generic::<Proteus>(&cfg)),
        Box::new(build_generic::<Rosetta>(&cfg)),
        Box::new(build_generic::<REncoder>(&cfg)),
        Box::new(build_generic::<StringGrafite>(&cfg)),
        Box::new(
            Surf::build_with(
                &cfg,
                &SurfTuning {
                    style: SuffixStyle::Hashed,
                    suffix_bits: Some(8),
                },
            )
            .unwrap(),
        ),
        Box::new(
            REncoder::build_with(&cfg, &REncoderTuning(REncoderVariant::SampleEstimation)).unwrap(),
        ),
        Box::new(
            GrafiteFilter::build_with(
                &cfg,
                &GrafiteTuning {
                    pow2_universe: true,
                    epsilon: None,
                },
            )
            .unwrap(),
        ),
    ];
    for f in &filters {
        for &k in keys.iter().step_by(11) {
            assert!(f.may_contain(k), "{} lost key {k}", f.name());
        }
    }

    // The typed epsilon tuning follows Theorem 3.4 sizing.
    let tuned = GrafiteFilter::build_with(
        &cfg,
        &GrafiteTuning {
            epsilon: Some(0.01),
            pow2_universe: false,
        },
    )
    .unwrap();
    assert_eq!(
        tuned.reduced_universe() as u128,
        keys.len() as u128 * 64 * 100
    );
}

#[test]
fn registry_reports_unregistered_specs() {
    let keys = [1u64, 2, 3];
    let cfg = FilterConfig::new(&keys);
    // The core-only registry knows Grafite and Bucketing, nothing else.
    let core_only = Registry::new();
    assert!(core_only.build(FilterSpec::Grafite, &cfg).is_ok());
    assert!(matches!(
        core_only.build(FilterSpec::Rosetta, &cfg),
        Err(FilterError::Unregistered("Rosetta"))
    ));
    // The standard registry covers all eleven.
    assert_eq!(standard_registry().registered().count(), FilterSpec::COUNT);
}
