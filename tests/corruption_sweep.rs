//! Corruption sweep: the dynamic twin of `cargo run -p xtask -- lint`'s
//! static panic-freedom pass (L1/L4).
//!
//! The lint proves the untrusted load paths *contain* no panicking
//! operations; this suite proves the paths *behave*: every truncation
//! prefix of every committed golden blob, every single-bit flip of every
//! header byte (all eight masks), one flip per byte over whole blobs, and
//! the same treatment for a serialized `FilterStore` manifest must come
//! back as a typed [`FilterError`] — never a panic, never an abort, never a
//! silently wrong filter. CI runs this under the `hardened` profile
//! (overflow-checks + debug-assertions on), so any arithmetic wrap on the
//! way to the typed error aborts the test too.

use std::path::PathBuf;

use grafite::{
    standard_registry, FamilySpec, FilterError, FilterSpec, FilterStore, Partitioning, Registry,
    StoreConfig,
};
use proptest::prelude::*;

fn golden_dirs() -> [PathBuf; 2] {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    [root.clone(), root.join("v2")]
}

/// Every committed golden blob: `(label, bytes)`.
fn golden_blobs() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for dir in golden_dirs() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("golden dir")
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect();
        entries.sort();
        for path in entries {
            let label = format!(
                "{}/{}",
                dir.file_name().unwrap().to_string_lossy(),
                path.file_name().unwrap().to_string_lossy()
            );
            out.push((label, std::fs::read(&path).expect("golden blob")));
        }
    }
    assert!(
        out.len() >= 24,
        "expected both golden sets, got {}",
        out.len()
    );
    out
}

/// Loading corrupt bytes must produce `Err`, never `Ok`. A panic fails the
/// test on its own; the typed-error contract is the `Err` assertion.
fn assert_rejects(registry: &Registry, bytes: &[u8], what: &str) {
    match registry.load(bytes) {
        Err(FilterError::Io { .. }) => panic!("{what}: in-memory load reported an I/O error"),
        Err(_) => {}
        Ok(_) => panic!("{what}: corrupt blob unexpectedly loaded"),
    }
}

/// Exhaustive truncation: all prefixes `0..len` of every golden blob.
#[test]
fn every_truncation_prefix_of_every_golden_fails_typed() {
    let registry = standard_registry();
    for (label, blob) in golden_blobs() {
        for cut in 0..blob.len() {
            assert_rejects(&registry, &blob[..cut], &format!("{label} cut at {cut}"));
        }
    }
}

/// Every bit of the five-word header, individually flipped: all eight
/// masks over bytes `0..40` of every golden blob.
#[test]
fn every_header_bit_flip_of_every_golden_fails_typed() {
    let registry = standard_registry();
    for (label, blob) in golden_blobs() {
        for byte in 0..40.min(blob.len()) {
            for bit in 0..8u8 {
                let mut bad = blob.clone();
                bad[byte] ^= 1 << bit;
                assert_rejects(
                    &registry,
                    &bad,
                    &format!("{label} header byte {byte} bit {bit}"),
                );
            }
        }
    }
}

/// One flip per byte over the *whole* blob (mask rotates with position):
/// the checksum must catch every payload corruption.
#[test]
fn every_byte_flip_of_every_golden_fails_typed() {
    let registry = standard_registry();
    for (label, blob) in golden_blobs() {
        for byte in 0..blob.len() {
            let mut bad = blob.clone();
            bad[byte] ^= 1 << (byte % 8);
            assert_rejects(&registry, &bad, &format!("{label} byte {byte}"));
        }
    }
}

fn sample_store_bytes(registry: &Registry) -> Vec<u8> {
    let keys: Vec<u64> = (0..200u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let config = StoreConfig::new(FamilySpec::Registry(FilterSpec::Grafite))
        .bits_per_key(16.0)
        .max_range(1 << 8)
        .partitioning(Partitioning::Range { shards: 3 });
    let store = FilterStore::build(registry, config, &keys).expect("build store");
    store.to_bytes()
}

/// The `FilterStore` manifest gets the same two sweeps: every truncation
/// prefix and one bit flip per byte must fail typed through
/// [`FilterStore::open`].
#[test]
fn store_manifest_corruption_fails_typed() {
    let registry = standard_registry();
    let bytes = sample_store_bytes(&registry);
    for cut in 0..bytes.len() {
        match FilterStore::open(&registry, &bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("manifest cut at {cut} unexpectedly opened"),
        }
    }
    for byte in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[byte] ^= 1 << (byte % 8);
        match FilterStore::open(&registry, &bad) {
            Err(_) => {}
            Ok(_) => panic!("manifest flip at byte {byte} unexpectedly opened"),
        }
    }
    // The pristine image still opens — the sweep isn't vacuous.
    assert!(FilterStore::open(&registry, &bytes).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized multi-site corruption: between 1 and 8 byte positions
    /// XORed with arbitrary nonzero masks. A 64-bit checksum forgery from
    /// random flips is ~2^-64; every case must reject typed.
    #[test]
    fn random_multi_flip_corruption_fails_typed(
        seed in any::<u64>(),
        flips in 1usize..8,
    ) {
        let registry = standard_registry();
        let blob = std::fs::read(
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/v2/grafite.bin"),
        ).expect("golden blob");
        let mut bad = blob.clone();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..flips {
            let pos = (next() as usize) % bad.len();
            let mask = (next() % 255 + 1) as u8;
            bad[pos] ^= mask;
        }
        if bad != blob {
            prop_assert!(registry.load(&bad).is_err(), "corrupt blob loaded");
        }
    }
}
