//! Cross-crate integration: every filter in the workspace, built over the
//! same datasets and probed with the same workloads, upholds the two
//! contracts the paper's comparison rests on — no false negatives anywhere,
//! and Grafite's FPR within its theoretical bound.

use grafite::{BucketingFilter, GrafiteFilter, RangeFilter};
use grafite_bloom::TrivialRangeFilter;
use grafite_filters::{Proteus, REncoder, REncoderVariant, Rosetta, Snarf, SuffixMode, Surf};
use grafite_workloads::{
    correlated_queries, datasets::Dataset, generate, non_empty_queries, uncorrelated_queries,
};

fn all_filters(keys: &[u64], sample: &[(u64, u64)]) -> Vec<Box<dyn RangeFilter>> {
    vec![
        Box::new(
            GrafiteFilter::builder()
                .bits_per_key(14.0)
                .build(keys)
                .unwrap(),
        ),
        Box::new(
            BucketingFilter::builder()
                .bits_per_key(14.0)
                .build(keys)
                .unwrap(),
        ),
        Box::new(Snarf::new(keys, 14.0).unwrap()),
        Box::new(Surf::new(keys, SuffixMode::Real { bits: 6 }).unwrap()),
        Box::new(Surf::new(keys, SuffixMode::Hash { bits: 6 }).unwrap()),
        Box::new(Proteus::new(keys, 14.0, sample, 3).unwrap()),
        Box::new(Rosetta::new(keys, 14.0, 1 << 10, Some(sample), 3).unwrap()),
        Box::new(REncoder::new(keys, 14.0, REncoderVariant::Full, None, 3).unwrap()),
        Box::new(
            REncoder::new(
                keys,
                14.0,
                REncoderVariant::SelectiveStorage { rounds: 2 },
                None,
                3,
            )
            .unwrap(),
        ),
        Box::new(
            REncoder::new(
                keys,
                14.0,
                REncoderVariant::SampleEstimation,
                Some(sample),
                3,
            )
            .unwrap(),
        ),
        Box::new(TrivialRangeFilter::new(keys, 0.05, 1 << 10, 3)),
    ]
}

#[test]
fn non_empty_queries_always_positive_on_every_dataset() {
    for dataset in [Dataset::Uniform, Dataset::Books, Dataset::Osm, Dataset::Fb] {
        let keys = generate(dataset, 4000, 11);
        let sample: Vec<(u64, u64)> = uncorrelated_queries(&keys, 100, 32, 5)
            .iter()
            .map(|q| (q.lo, q.hi))
            .collect();
        let filters = all_filters(&keys, &sample);
        for l in [1u64, 32, 1024] {
            let queries = non_empty_queries(&keys, 300, l, 7);
            for f in &filters {
                for q in &queries {
                    assert!(
                        f.may_contain_range(q.lo, q.hi),
                        "{} returned a false negative on {} for [{}, {}] (l={l})",
                        f.name(),
                        dataset.name(),
                        q.lo,
                        q.hi
                    );
                }
            }
        }
    }
}

#[test]
fn grafite_fpr_within_bound_on_adversarial_workloads() {
    let keys = generate(Dataset::Uniform, 20_000, 3);
    for l in [1u64, 32, 1024] {
        for degree in [0.0, 0.5, 1.0] {
            let filter = GrafiteFilter::builder()
                .bits_per_key(16.0)
                .build(&keys)
                .unwrap();
            let queries = correlated_queries(&keys, 5_000, l, degree, 99);
            if queries.len() < 1000 {
                continue;
            }
            let fps = queries
                .iter()
                .filter(|q| filter.may_contain_range(q.lo, q.hi))
                .count();
            let fpr = fps as f64 / queries.len() as f64;
            let bound = filter.fpp_for_range_size(l);
            assert!(
                fpr <= bound * 1.6 + 0.003,
                "Grafite FPR {fpr} above bound {bound} at l={l}, D={degree}"
            );
        }
    }
}

#[test]
fn every_filter_reports_plausible_space() {
    let keys = generate(Dataset::Uniform, 5000, 9);
    let sample: Vec<(u64, u64)> = uncorrelated_queries(&keys, 100, 32, 5)
        .iter()
        .map(|q| (q.lo, q.hi))
        .collect();
    for f in all_filters(&keys, &sample) {
        let bpk = f.bits_per_key();
        assert!(
            bpk > 1.0 && bpk < 200.0,
            "{} reports implausible {bpk} bits/key",
            f.name()
        );
        assert_eq!(f.num_keys(), keys.len(), "{}", f.name());
    }
}

/// The `may_contain_range` contract (see `grafite_core::traits`): `a <= b`
/// is debug-asserted by **every** implementation — one consistent rule
/// instead of the old "may panic" escape hatch. Integration tests run with
/// debug assertions on, so an inverted range must panic in every filter.
#[cfg(debug_assertions)]
#[test]
fn inverted_ranges_are_debug_asserted_by_every_filter() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let keys = generate(Dataset::Uniform, 2000, 5);
    let sample: Vec<(u64, u64)> = vec![(0, 31)];
    let filters = all_filters(&keys, &sample);
    // Silence the expected panic messages — but only on *this* thread, so
    // concurrently-running tests keep their diagnostics.
    let this_thread = std::thread::current().id();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().id() != this_thread {
            prev_hook(info);
        }
    }));
    let mut violations = Vec::new();
    for f in &filters {
        if catch_unwind(AssertUnwindSafe(|| f.may_contain_range(5, 1))).is_ok() {
            violations.push(format!("{} accepted an inverted range", f.name()));
        }
        if catch_unwind(AssertUnwindSafe(|| f.may_contain_range(u64::MAX, 0))).is_ok() {
            violations.push(format!("{} accepted [u64::MAX, 0]", f.name()));
        }
    }
    // Drop the silencer (restores the standard hook).
    let _ = std::panic::take_hook();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn whole_universe_query_is_positive_everywhere() {
    let keys = generate(Dataset::Uniform, 1000, 21);
    let sample: Vec<(u64, u64)> = vec![(0, 31)];
    for f in all_filters(&keys, &sample) {
        // TrivialBloom probes point-by-point: skip the full-universe scan.
        if f.name() == "TrivialBloom" {
            continue;
        }
        assert!(
            f.may_contain_range(0, u64::MAX),
            "{} rejected the full universe",
            f.name()
        );
    }
}
