//! Format-stability goldens: one small serialized filter per family is
//! committed under `tests/golden/` (the frozen **v1** set, written before
//! the position-sampled select directories) and `tests/golden/v2/` (the
//! current format). This suite asserts current code still loads each one —
//! v1 through the legacy rebuild-on-load path, v2 verbatim — and answers
//! the fixed probe workload exactly as recorded in the per-set
//! `manifest.txt`, catching silent format breaks (a payload re-ordering, a
//! changed directory layout, a checksum rule drift) that round-trip tests
//! alone cannot see.
//!
//! The v1 set is **frozen**: never regenerate it. After an *intentional*
//! format change (bump `grafite_core::persist::FORMAT_VERSION` first!)
//! regenerate the current set with:
//!
//! ```text
//! cargo test --test format_golden -- --ignored regenerate_golden_files
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use grafite_core::registry::FilterSpec;
use grafite_core::{FilterConfig, FilterError, PersistentFilter, StringGrafite};
use grafite_filters::standard_registry;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The current-format golden set lives one level down; the parent directory
/// holds the frozen v1 blobs.
fn golden_v2_dir() -> PathBuf {
    golden_dir().join("v2")
}

/// 257 deterministic keys — small enough for a few-KB blob per family,
/// enough to exercise multi-block succinct structures.
fn golden_keys() -> Vec<u64> {
    let mut state = 0x601DEA_u64 ^ 0x9E3779B97F4A7C15;
    (0..257)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
        .collect()
}

fn golden_config(keys: &[u64]) -> (FilterConfig<'_>, Vec<(u64, u64)>) {
    let sample: Vec<(u64, u64)> = (0..64u64).map(|i| (i << 40, (i << 40) + 31)).collect();
    let cfg = FilterConfig::new(keys)
        .bits_per_key(20.0)
        .max_range(1 << 10)
        .seed(0x601D);
    (cfg, sample)
}

/// The fixed probe workload whose answer fingerprint is recorded in the
/// manifest: key hits, near-misses, empties, and universe edges.
fn golden_probes(keys: &[u64]) -> Vec<(u64, u64)> {
    let mut probes = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        probes.push((k, k));
        probes.push((k.saturating_add(2), k.saturating_add(33)));
        let far = (i as u64).wrapping_mul(0xABCDEF9876543210);
        probes.push((far, far.saturating_add(31)));
    }
    probes.push((0, 1 << 20));
    probes.push((u64::MAX - (1 << 20), u64::MAX));
    probes
}

/// FNV-1a over the answer booleans: the manifest's per-family fingerprint.
fn fingerprint(answers: impl IntoIterator<Item = bool>) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325u64;
    for a in answers {
        acc = (acc ^ (a as u64 + 1)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

fn families() -> Vec<(String, FilterSpec)> {
    FilterSpec::ALL
        .into_iter()
        .map(|spec| (spec.label().to_lowercase().replace('-', "_"), spec))
        .collect()
}

const STRING_GRAFITE_FILE: &str = "string_grafite";

fn string_golden_words() -> Vec<String> {
    (0..200).map(|i| format!("golden-{i:04}-key")).collect()
}

/// Writes every **current-format** golden blob and its manifest under
/// `tests/golden/v2/`. `#[ignore]`d: run explicitly (see module docs) only
/// when the format intentionally changes. The v1 set in the parent
/// directory is frozen and never rewritten.
#[test]
#[ignore = "regenerates the committed golden files; run explicitly on intentional format changes"]
fn regenerate_golden_files() {
    let dir = golden_v2_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let keys = golden_keys();
    let (cfg, sample) = golden_config(&keys);
    let cfg = cfg.sample(&sample);
    let probes = golden_probes(&keys);
    let registry = standard_registry();
    let mut manifest = String::new();
    for (name, spec) in families() {
        let filter = registry.build(spec, &cfg).unwrap();
        let blob = filter.to_bytes();
        let mut answers = Vec::new();
        filter.may_contain_ranges(&probes, &mut answers);
        std::fs::write(dir.join(format!("{name}.bin")), &blob).unwrap();
        manifest.push_str(&format!(
            "{name} {} {:#018x}\n",
            filter.spec_id(),
            fingerprint(answers)
        ));
    }
    // StringGrafite rides along: not a registry spec, but part of the
    // format surface.
    let sg = StringGrafite::new(&string_golden_words(), 14.0, 0x601D).unwrap();
    let mut answers = Vec::new();
    grafite_core::RangeFilter::may_contain_ranges(&sg, &probes, &mut answers);
    std::fs::write(
        dir.join(format!("{STRING_GRAFITE_FILE}.bin")),
        sg.to_bytes(),
    )
    .unwrap();
    manifest.push_str(&format!(
        "{STRING_GRAFITE_FILE} {} {:#018x}\n",
        sg.spec_id(),
        fingerprint(answers)
    ));
    std::fs::write(dir.join("manifest.txt"), manifest).unwrap();
}

fn read_manifest(dir: &std::path::Path) -> BTreeMap<String, (u32, u64)> {
    let path = dir.join("manifest.txt");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("{} missing — run the regenerate test", path.display()));
    text.lines()
        .map(|line| {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap().to_string();
            let spec: u32 = parts.next().unwrap().parse().unwrap();
            let fp =
                u64::from_str_radix(parts.next().unwrap().trim_start_matches("0x"), 16).unwrap();
            (name, (spec, fp))
        })
        .collect()
}

/// Loads and probes every golden blob in `dir`, asserting the recorded
/// answers. Covers both the frozen v1 set (legacy rebuild-on-load) and the
/// current v2 set (verbatim directories) — `generation` only labels the
/// failure messages.
fn check_golden_set(dir: &std::path::Path, generation: &str) {
    let keys = golden_keys();
    let probes = golden_probes(&keys);
    let registry = standard_registry();
    let manifest = read_manifest(dir);
    for (name, spec) in families() {
        let (want_spec, want_fp) = manifest[&name];
        let blob = std::fs::read(dir.join(format!("{name}.bin")))
            .unwrap_or_else(|e| panic!("{generation} golden blob for {name} missing: {e}"));
        let filter = registry
            .load(&blob)
            .unwrap_or_else(|e| panic!("{generation} golden {name} no longer loads: {e}"));
        assert_eq!(
            filter.spec_id(),
            want_spec,
            "{generation}/{name}: spec id drifted"
        );
        assert_eq!(
            filter.spec_id(),
            spec.spec_id(),
            "{generation}/{name}: registry mapping drifted"
        );
        assert_eq!(
            filter.num_keys(),
            keys.len(),
            "{generation}/{name}: key count drifted"
        );
        // No false negatives on the golden key set…
        for &k in &keys {
            assert!(
                filter.may_contain(k),
                "{generation}/{name}: golden blob lost key {k}"
            );
        }
        // …and the exact recorded answers on the full probe workload.
        let mut answers = Vec::new();
        filter.may_contain_ranges(&probes, &mut answers);
        assert_eq!(
            fingerprint(answers),
            want_fp,
            "{generation}/{name}: loaded answers drifted from the committed fingerprint — \
             the on-disk format changed semantically; if intentional, bump \
             FORMAT_VERSION and regenerate"
        );
    }
    // StringGrafite golden.
    let (want_spec, want_fp) = manifest[STRING_GRAFITE_FILE];
    let blob = std::fs::read(dir.join(format!("{STRING_GRAFITE_FILE}.bin"))).unwrap();
    let sg = StringGrafite::deserialize(&blob)
        .unwrap_or_else(|e| panic!("{generation} string_grafite golden no longer loads: {e}"));
    assert_eq!(sg.spec_id(), want_spec);
    for w in string_golden_words() {
        assert!(
            sg.may_contain(w.as_bytes()),
            "{generation} string golden lost {w}"
        );
    }
    let mut answers = Vec::new();
    grafite_core::RangeFilter::may_contain_ranges(&sg, &probes, &mut answers);
    assert_eq!(
        fingerprint(answers),
        want_fp,
        "{generation} string_grafite answers drifted"
    );
}

#[test]
fn committed_goldens_still_load_and_answer_identically() {
    check_golden_set(&golden_v2_dir(), "v2");
}

/// The frozen v1 blobs (legacy select-hint directories) must keep loading
/// through the rebuild-on-load path and answering identically.
#[test]
fn legacy_v1_goldens_still_load_and_answer_identically() {
    check_golden_set(&golden_dir(), "v1");
}

/// A v1 blob must answer the probe workload **bit-identically** to a
/// freshly built (v2) filter of the same configuration: the directory
/// overhaul changed the layout, never the answers. The two manifests are
/// therefore identical fingerprint-for-fingerprint, and a loaded v1 filter
/// re-serializes as a byte-identical v2 blob.
#[test]
fn v1_goldens_answer_identically_to_fresh_v2_filters() {
    let v1 = read_manifest(&golden_dir());
    let v2 = read_manifest(&golden_v2_dir());
    assert_eq!(
        v1, v2,
        "v1 and v2 manifests must agree: same spec ids, same answer fingerprints"
    );
    let registry = standard_registry();
    for (name, _) in families() {
        let v1_blob = std::fs::read(golden_dir().join(format!("{name}.bin"))).unwrap();
        let v2_blob = std::fs::read(golden_v2_dir().join(format!("{name}.bin"))).unwrap();
        let upgraded = registry.load(&v1_blob).unwrap().to_bytes();
        assert_eq!(
            upgraded, v2_blob,
            "{name}: loading a v1 blob and re-serializing must produce the v2 image"
        );
    }
}

/// Corrupt, truncated, and wrong-version variants of a committed golden
/// must come back as typed [`FilterError`]s — never a panic, never a
/// silently wrong filter.
#[test]
fn corrupted_goldens_fail_typed() {
    let registry = standard_registry();
    let blob = std::fs::read(golden_v2_dir().join("grafite.bin")).unwrap();

    // Bad magic.
    let mut bad = blob.clone();
    bad[0] ^= 0x5A;
    assert!(matches!(registry.load(&bad), Err(FilterError::BadMagic(_))));

    // Unsupported format versions on either side of the accepted range.
    for version in [0u32, 9] {
        let mut bad = blob.clone();
        bad[12..16].copy_from_slice(&version.to_le_bytes());
        assert!(
            matches!(
                registry.load(&bad),
                Err(FilterError::UnsupportedFormatVersion { .. })
            ),
            "version {version} unexpectedly accepted"
        );
    }

    // A v2 blob whose version word is rewritten to v1 still fails: the
    // checksum covers the spec/version word, so version skew cannot
    // smuggle a v2 payload through the legacy decoder.
    let mut bad = blob.clone();
    bad[12..16].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        registry.load(&bad),
        Err(FilterError::ChecksumMismatch { .. })
    ));

    // Unknown spec id.
    let mut bad = blob.clone();
    bad[8] = 250;
    assert!(matches!(
        registry.load(&bad),
        Err(FilterError::UnknownSpecId(250))
    ));

    // Truncations: **every** prefix length must fail typed, never panic —
    // on both the v2 blob and its frozen v1 counterpart. (The full
    // every-blob, every-header-bit sweep lives in `tests/corruption_sweep.rs`;
    // this keeps the strict TruncatedBuffer-variant assertion close to the
    // other golden checks.)
    let v1_blob = std::fs::read(golden_dir().join("grafite.bin")).unwrap();
    for blob in [&blob, &v1_blob] {
        for cut in 0..blob.len() {
            match registry.load(&blob[..cut]) {
                Err(FilterError::TruncatedBuffer { .. }) => {}
                Err(other) => panic!("truncation at {cut} gave error {other:?}"),
                Ok(_) => panic!("truncation at {cut} unexpectedly loaded"),
            }
        }
    }

    // Payload bit-flips: the checksum catches every single-bit flip of
    // every payload byte (all eight masks per byte).
    for pos in 40..blob.len() {
        for bit in 0..8u8 {
            let mut bad = blob.clone();
            bad[pos] ^= 1 << bit;
            assert!(
                matches!(
                    registry.load(&bad),
                    Err(FilterError::ChecksumMismatch { .. })
                ),
                "flip at byte {pos} bit {bit} escaped the checksum"
            );
        }
    }

    // Header length field inflated beyond the buffer.
    let mut bad = blob.clone();
    bad[24] = bad[24].wrapping_add(1);
    assert!(matches!(
        registry.load(&bad),
        Err(FilterError::TruncatedBuffer { .. })
    ));
}

/// Zero-copy views require the current format: a legacy v1 blob cannot
/// back a borrowed view (its directories must be rebuilt), so the view
/// constructor rejects it typed while the owned load path accepts it.
#[test]
fn v1_blobs_load_owned_but_not_as_views() {
    use grafite_core::persist::bytes_to_words;
    use grafite_core::{GrafiteFilter, GrafiteFilterView, RangeFilter};
    let v1_blob = std::fs::read(golden_dir().join("grafite.bin")).unwrap();
    let words = bytes_to_words(&v1_blob).unwrap();
    assert!(matches!(
        GrafiteFilterView::view(&words),
        Err(FilterError::UnsupportedFormatVersion { found: 1, .. })
    ));
    let owned: GrafiteFilter = GrafiteFilter::deserialize(&v1_blob).expect("owned legacy load");
    // And the v2 image of the same filter views fine.
    let v2_words = bytes_to_words(&owned.to_bytes()).unwrap();
    let view = GrafiteFilterView::view(&v2_words).expect("v2 view");
    for probe in (0..2000u64).map(|i| i.wrapping_mul(0xDEAD_BEEF_CAFE)) {
        assert_eq!(
            view.may_contain_range(probe, probe.saturating_add(64)),
            owned.may_contain_range(probe, probe.saturating_add(64)),
        );
    }
}
