//! Acceptance suite for the lazily-mapped serving path: `open_mapped`
//! must be indistinguishable from `open` to a reader.
//!
//! * For every family, a mapped store answers **bit-identically** to an
//!   eagerly-opened store over the same manifest, and re-serializes
//!   byte-identically once materialized.
//! * Cold start is genuinely lazy: opening touches no shard bodies, and a
//!   point query materializes exactly the one shard it routes to.
//! * `reload_mapped` swaps manifests atomically under four concurrent
//!   reader threads with zero failed queries: every answer matches the
//!   old or the new snapshot exactly.
//! * A byte-flip sweep over the manifest file: every corruption either
//!   fails typed at `open_mapped` or degrades the damaged shard to a
//!   fail-open placeholder — present keys still answer `true`, the load
//!   error is retained, and `save_to`/`apply` refuse the degraded store.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use grafite::{
    standard_registry, FamilySpec, FilterError, FilterStore, Partitioning, StoreConfig, Update,
};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Sorted, deduplicated keys with universe edges and tight clusters.
fn dataset(n: usize, seed: u64) -> Vec<u64> {
    let mut keys = vec![0, 1, 2, 255, 256, 257, u64::MAX - 1, u64::MAX];
    let mut state = seed;
    for _ in 0..n {
        keys.push(lcg(&mut state));
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Key-avoiding empty ranges for the auto-tuned families.
fn sample_queries(sorted_keys: &[u64]) -> Vec<(u64, u64)> {
    let mut sample = Vec::new();
    let mut state = 3u64;
    while sample.len() < 64 {
        let a = lcg(&mut state);
        let Some(b) = a.checked_add(31) else { continue };
        let i = sorted_keys.partition_point(|&k| k < a);
        if i < sorted_keys.len() && sorted_keys[i] <= b {
            continue;
        }
        sample.push((a, b));
    }
    sample
}

/// A mixed probe batch: key-anchored hits, near misses, far misses, edges.
fn probes(keys: &[u64]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for &k in keys.iter().step_by(3) {
        out.push((k, k));
        out.push((k.saturating_sub(7), k.saturating_add(7)));
    }
    let mut state = 0xBEEF;
    for _ in 0..600 {
        let a = lcg(&mut state);
        for width in [0u64, 1, 31, 63] {
            out.push((a, a.saturating_add(width)));
        }
    }
    out.push((0, 63));
    out.push((u64::MAX - 63, u64::MAX));
    out
}

fn store_config(family: FamilySpec, sample: Vec<(u64, u64)>, p: Partitioning) -> StoreConfig {
    StoreConfig::new(family)
        .bits_per_key(18.0)
        .max_range(64)
        .seed(13)
        .sample(sample)
        .partitioning(p)
}

/// Writes `bytes` to a process-unique temp file and returns the path.
fn temp_manifest(name: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("grafite-mapped-{name}-{}", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// For every family under both partitionings: `open_mapped` answers
/// bit-identically to `open` over the same manifest file, loses no key,
/// and — once every shard has materialized — re-serializes
/// byte-identically.
#[test]
fn mapped_open_matches_eager_open_for_every_family() {
    let registry = standard_registry();
    let keys = dataset(1100, 0xACCE_55ED);
    let sample = sample_queries(&keys);
    let queries = probes(&keys);
    for family in FamilySpec::ALL {
        for partitioning in [
            Partitioning::Range { shards: 4 },
            Partitioning::Hash { shards: 4 },
        ] {
            let config = store_config(family, sample.clone(), partitioning);
            let store = FilterStore::build(&registry, config, &keys)
                .unwrap_or_else(|e| panic!("{}: store build failed: {e}", family.label()));
            let bytes = store.to_bytes();
            let path = temp_manifest(&format!("{}-{partitioning:?}", family.label()), &bytes);

            let eager = FilterStore::open(&registry, &bytes)
                .unwrap_or_else(|e| panic!("{}: open failed: {e}", family.label()));
            let mapped = FilterStore::open_mapped(&registry, &path)
                .unwrap_or_else(|e| panic!("{}: open_mapped failed: {e}", family.label()));

            let (eager_snap, mapped_snap) = (eager.snapshot(), mapped.snapshot());
            let (mut want, mut got) = (Vec::new(), Vec::new());
            eager_snap.query_ranges(&queries, &mut want);
            mapped_snap.query_ranges(&queries, &mut got);
            assert_eq!(
                want,
                got,
                "{}/{partitioning:?}: mapped answers diverged from eager open",
                family.label()
            );
            for &(a, b) in queries.iter().step_by(17) {
                assert_eq!(
                    mapped_snap.may_contain_range(a, b),
                    eager_snap.may_contain_range(a, b),
                    "{}/{partitioning:?}: single-query path diverged on [{a}, {b}]",
                    family.label()
                );
            }
            for &k in keys.iter().step_by(13) {
                assert!(
                    mapped_snap.may_contain(k),
                    "{}/{partitioning:?}: mapped store lost key {k}",
                    family.label()
                );
            }

            assert!(
                mapped.stats().lazy_shard_loads() > 0,
                "{}/{partitioning:?}: no shard was lazily materialized",
                family.label()
            );
            assert_eq!(
                mapped.stats().shard_load_errors(),
                0,
                "{}/{partitioning:?}: clean manifest reported load errors",
                family.label()
            );
            // The strongest statement: the fully-materialized mapped store
            // writes back the exact bytes it was opened from.
            assert_eq!(
                mapped.to_bytes(),
                bytes,
                "{}/{partitioning:?}: mapped store re-serializes differently",
                family.label()
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Opening a mapped store touches no shard bodies; a point query
/// materializes exactly the shard it routes to.
#[test]
fn mapped_open_is_lazy_per_shard() {
    let registry = standard_registry();
    let keys = dataset(2000, 0x1A2B);
    let config = store_config(
        FamilySpec::Registry(grafite::FilterSpec::Grafite),
        Vec::new(),
        Partitioning::Range { shards: 8 },
    );
    let store = FilterStore::build(&registry, config, &keys).unwrap();
    let path = temp_manifest("lazy", &store.to_bytes());

    let mapped = FilterStore::open_mapped(&registry, &path).unwrap();
    let snap = mapped.snapshot();
    assert_eq!(snap.num_shards(), 8);
    assert_eq!(
        mapped.stats().lazy_shard_loads(),
        0,
        "opening the store materialized shards eagerly"
    );

    // One point query routes to one shard: exactly one materialization.
    let k = keys[keys.len() / 2];
    assert!(snap.may_contain(k));
    assert_eq!(
        mapped.stats().lazy_shard_loads(),
        1,
        "a point query materialized more than its own shard"
    );

    // Applying updates only materializes the dirty shards it rebuilds
    // (plus nothing else beyond what queries already loaded).
    let loads_before = mapped.stats().lazy_shard_loads();
    mapped.apply(&[Update::Insert(k.wrapping_add(1))]).unwrap();
    assert!(
        mapped.stats().lazy_shard_loads() <= loads_before + 1,
        "apply materialized unrelated shards"
    );
    assert!(mapped.may_contain(k.wrapping_add(1)));

    let _ = std::fs::remove_file(&path);
}

/// `reload_mapped` under four concurrent reader threads: zero failed
/// queries, every answer matches the old or the new snapshot exactly, and
/// the new key set serves after the swap.
#[test]
fn reload_mapped_under_concurrent_readers_drops_zero_queries() {
    let registry = standard_registry();
    let old_keys = dataset(1500, 0x0111);
    let new_keys = dataset(1500, 0x9999);
    let family = FamilySpec::Registry(grafite::FilterSpec::Grafite);
    let old_store = FilterStore::build(
        &registry,
        store_config(family, Vec::new(), Partitioning::Range { shards: 4 }),
        &old_keys,
    )
    .unwrap();
    let new_store = FilterStore::build(
        &registry,
        store_config(family, Vec::new(), Partitioning::Range { shards: 4 }),
        &new_keys,
    )
    .unwrap();
    let old_path = temp_manifest("reload-old", &old_store.to_bytes());
    let new_path = temp_manifest("reload-new", &new_store.to_bytes());
    let (old_snap, new_snap) = (old_store.snapshot(), new_store.snapshot());

    let served = Arc::new(FilterStore::open_mapped(&registry, &old_path).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4u64)
        .map(|t| {
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            let old_snap = Arc::clone(&old_snap);
            let new_snap = Arc::clone(&new_snap);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = (t * 7919 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 1;
                    let b = a.saturating_add(i % 48);
                    let got = served.may_contain_range(a, b);
                    assert!(
                        got == old_snap.may_contain_range(a, b)
                            || got == new_snap.may_contain_range(a, b),
                        "answer matches neither snapshot at [{a}, {b}]"
                    );
                    answered += 1;
                    i += 1;
                }
                answered
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(50));
    let version = served.reload_mapped(&new_path).unwrap();
    assert_eq!(version, 1);
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers answered nothing");

    assert_eq!(served.stats().reloads(), 1);
    for &k in new_keys.iter().step_by(19) {
        assert!(served.may_contain(k), "post-reload FN at {k}");
    }

    let _ = std::fs::remove_file(&old_path);
    let _ = std::fs::remove_file(&new_path);
}

/// `reload` from bytes behaves like `reload_mapped` from a file, and a
/// missing manifest path fails typed without touching the served store.
#[test]
fn reload_from_bytes_and_missing_paths() {
    let registry = standard_registry();
    let keys_a = dataset(400, 0xAAAA);
    let keys_b = dataset(400, 0xBBBB);
    let family = FamilySpec::Registry(grafite::FilterSpec::Grafite);
    let build = |keys: &[u64]| {
        FilterStore::build(
            &registry,
            store_config(family, Vec::new(), Partitioning::Range { shards: 2 }),
            keys,
        )
        .unwrap()
    };
    let served = build(&keys_a);
    let replacement = build(&keys_b).to_bytes();

    assert_eq!(served.reload(&replacement).unwrap(), 1);
    for &k in keys_b.iter().step_by(7) {
        assert!(served.may_contain(k), "post-reload FN at {k}");
    }

    // A missing file fails typed and leaves the served snapshot alone.
    let gone = std::env::temp_dir().join(format!("grafite-mapped-missing-{}", std::process::id()));
    assert!(matches!(
        served.reload_mapped(&gone),
        Err(FilterError::Io { .. })
    ));
    assert!(served.may_contain(keys_b[0]));
    assert_eq!(
        served.snapshot().version(),
        1,
        "failed reload bumped the version"
    );
}

/// Byte-flip sweep over a saved manifest: every corruption either fails
/// typed at `open_mapped` (scan-time validation) or opens into a store
/// whose damaged shard degrades to fail-open — so present keys still
/// answer `true` — with the load error retained and `save_to`/`apply`
/// refusing the degraded store.
#[test]
fn corrupted_mapped_manifests_fail_typed_or_fail_open() {
    let registry = standard_registry();
    let keys = dataset(300, 0xC0DE);
    let config = store_config(
        FamilySpec::Registry(grafite::FilterSpec::Grafite),
        Vec::new(),
        Partitioning::Range { shards: 3 },
    );
    let store = FilterStore::build(&registry, config, &keys).unwrap();
    let bytes = store.to_bytes();
    let path = std::env::temp_dir().join(format!("grafite-mapped-sweep-{}", std::process::id()));

    let mut typed_failures = 0usize;
    let mut degraded_opens = 0usize;
    let mut clean_opens = 0usize;
    for at in (0..bytes.len()).step_by(3) {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0xA5;
        std::fs::write(&path, &corrupt).unwrap();
        match FilterStore::open_mapped(&registry, &path) {
            Err(_) => typed_failures += 1,
            Ok(mapped) => {
                // Fail-open invariant: no corruption may introduce a false
                // negative — a damaged shard answers `true` for everything.
                let snap = mapped.snapshot();
                for &k in keys.iter().step_by(5) {
                    assert!(
                        snap.may_contain(k),
                        "byte {at}: corruption caused a false negative at {k}"
                    );
                }
                if let Some(err) = snap.load_error() {
                    degraded_opens += 1;
                    assert!(
                        matches!(err, FilterError::ShardLoad { .. }),
                        "byte {at}: load error is not ShardLoad: {err}"
                    );
                    assert!(
                        mapped.stats().shard_load_errors() > 0,
                        "byte {at}: degraded shard not counted"
                    );
                    // A degraded store refuses to re-serialize itself or to
                    // rebuild the damaged shard over bad data.
                    let mut sink = Vec::new();
                    assert!(
                        mapped.save_to(&mut sink).is_err(),
                        "byte {at}: degraded store serialized anyway"
                    );
                    let deg = snap
                        .shards()
                        .iter()
                        .position(|s| s.load_error().is_some())
                        .unwrap();
                    let (lo, _) = snap.routing().shard_span(deg);
                    assert!(
                        mapped.apply(&[Update::Insert(lo)]).is_err(),
                        "byte {at}: degraded shard accepted an update"
                    );
                } else {
                    clean_opens += 1;
                }
            }
        }
    }
    let _ = std::fs::remove_file(&path);

    // The sweep must have exercised all three regimes: header/structure
    // damage (typed scan failure), shard-body damage (fail-open), and
    // harmless damage (padding bytes).
    assert!(typed_failures > 0, "no corruption failed at scan time");
    assert!(degraded_opens > 0, "no corruption degraded a shard");
    // Truncation fails typed too.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(FilterStore::open_mapped(&registry, &path).is_err());
    std::fs::write(&path, &bytes[..40]).unwrap();
    assert!(FilterStore::open_mapped(&registry, &path).is_err());
    let _ = std::fs::remove_file(&path);
    // `clean_opens` may legitimately be zero if every byte is covered by a
    // checksum; it exists so the compiler sees the counter used.
    let _ = clean_opens;
}
