//! End-to-end check of the paper's worked example (Examples 3.2 and 3.3,
//! Figure 2) through the public API: the exact hash parameters, the exact
//! hash codes, the exact Elias–Fano layout, and the exact false positive.

use grafite::grafite_core::GrafiteFilter;
use grafite::grafite_hash::{LocalityHash, PairwiseHash};
use grafite::grafite_succinct::EliasFano;
use grafite::RangeFilter;

const S: [u64; 10] = [9, 48, 50, 191, 226, 269, 335, 446, 487, 511];

fn paper_hash() -> LocalityHash {
    // Example 3.2: n = 10, L = 4, eps = 0.4 -> r = nL/eps = 100;
    // q(x) = ((10x + 5) mod (2^31 - 1)) mod 100.
    LocalityHash::from_pairwise(PairwiseHash::with_params(10, 5, (1 << 31) - 1, 100))
}

#[test]
fn example_3_2_hash_codes() {
    let h = paper_hash();
    let codes: Vec<u64> = S.iter().map(|&x| h.eval(x)).collect();
    assert_eq!(codes, vec![14, 53, 55, 6, 51, 94, 70, 91, 32, 66]);
}

#[test]
fn figure_2_elias_fano_layout() {
    let mut sorted = S.map(|x| paper_hash().eval(x));
    sorted.sort_unstable();
    assert_eq!(sorted, [6, 14, 32, 51, 53, 55, 66, 70, 91, 94]);
    let ef = EliasFano::new(&sorted, 100);
    // l = floor(log2(r/n)) = 3 low bits, as in Figure 2.
    assert_eq!(ef.low_bit_width(), 3);
    // The low parts V of Figure 2: 110 110 000 011 101 111 010 110 011 110.
    let lows: Vec<u64> = sorted.iter().map(|z| z & 0b111).collect();
    assert_eq!(
        lows,
        vec![0b110, 0b110, 0b000, 0b011, 0b101, 0b111, 0b010, 0b110, 0b011, 0b110]
    );
}

#[test]
fn example_3_3_query_is_the_papers_false_positive() {
    let h = paper_hash();
    // h(44) = 49, h(47) = 52.
    assert_eq!(h.eval(44), 49);
    assert_eq!(h.eval(47), 52);
    let filter = GrafiteFilter::from_hash(h, &S);
    // predecessor(52) = 51 >= 49 -> "not empty", although [44,47] ∩ S = ∅.
    assert!(filter.may_contain_range(44, 47));
}

#[test]
fn example_3_3_predecessor_steps() {
    let mut sorted = S.map(|x| paper_hash().eval(x));
    sorted.sort_unstable();
    let ef = EliasFano::new(&sorted, 100);
    // The paper's steps: predecessor(52) must be z_4 = 51.
    assert_eq!(ef.predecessor(52), Some(51));
}

#[test]
fn no_false_negatives_on_the_example() {
    let filter = GrafiteFilter::from_hash(paper_hash(), &S);
    for &k in &S {
        assert!(filter.may_contain_range(k, k), "point FN on {k}");
    }
    // All L=4 windows covering a key answer "not empty".
    for &k in &S {
        for off in 0..4u64 {
            let a = k.saturating_sub(off);
            assert!(
                filter.may_contain_range(a, a + 3),
                "range FN on {k} off {off}"
            );
        }
    }
}
