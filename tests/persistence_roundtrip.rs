//! Serialization round-trips for every filter family in the workspace:
//! arbitrary key sets → build → serialize → load → **bit-identical**
//! answers on point, range, edge-of-universe, and batch queries — through
//! both the typed `deserialize` path and the spec-dispatching
//! `Registry::load` path.

use grafite_core::persist::spec_id;
use grafite_core::registry::FilterSpec;
use grafite_core::{
    FilterConfig, FilterError, PersistentFilter, StringGrafite, WorkloadAwareBucketing,
};
use grafite_filters::standard_registry;

fn pseudo_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
        .collect()
}

/// Point, small-range, key-hugging, block-spanning, and universe-edge
/// queries — the shapes that exercise every code path of every family.
fn probe_queries(keys: &[u64]) -> Vec<(u64, u64)> {
    let mut queries = Vec::new();
    for (i, &k) in keys.iter().enumerate().step_by(7) {
        queries.push((k, k)); // point on a key
        queries.push((k.saturating_sub(3), k.saturating_add(3)));
        queries.push((k.saturating_add(1), k.saturating_add(32))); // hugging
        let far = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        queries.push((far, far.saturating_add(31))); // usually empty
    }
    // Universe edges.
    queries.push((0, 0));
    queries.push((0, 1000));
    queries.push((u64::MAX - 1000, u64::MAX));
    queries.push((u64::MAX, u64::MAX));
    queries.sort_unstable();
    queries
}

fn assert_bit_identical(
    built: &dyn PersistentFilter,
    loaded: &dyn PersistentFilter,
    queries: &[(u64, u64)],
    label: &str,
) {
    assert_eq!(loaded.name(), built.name(), "{label}: name drifted");
    assert_eq!(
        loaded.num_keys(),
        built.num_keys(),
        "{label}: key count drifted"
    );
    for &(a, b) in queries {
        assert_eq!(
            loaded.may_contain_range(a, b),
            built.may_contain_range(a, b),
            "{label}: answer diverged on [{a}, {b}]"
        );
    }
    // Batch path (exercises Grafite's forward-scan specialisation).
    let (mut want, mut got) = (Vec::new(), Vec::new());
    built.may_contain_ranges(queries, &mut want);
    loaded.may_contain_ranges(queries, &mut got);
    assert_eq!(got, want, "{label}: batch answers diverged");
    // The loaded filter serializes back to the identical blob: the format
    // is a fixed point, not merely query-equivalent.
    assert_eq!(
        loaded.to_bytes(),
        built.to_bytes(),
        "{label}: re-serialization drifted"
    );
}

#[test]
fn every_registry_spec_roundtrips_through_registry_load() {
    let registry = standard_registry();
    let keys = pseudo_keys(3000, 0xF11735);
    let sample: Vec<(u64, u64)> = (0..256u64).map(|i| (i << 40, (i << 40) + 31)).collect();
    let queries = probe_queries(&keys);
    // 20 bits/key keeps every family above its structural floor, so all
    // eleven configurations build (and must then round-trip).
    let cfg = FilterConfig::new(&keys)
        .bits_per_key(20.0)
        .max_range(1 << 10)
        .sample(&sample)
        .seed(77);
    for spec in FilterSpec::ALL {
        let built = registry
            .build(spec, &cfg)
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", spec.label()));
        let blob = built.to_bytes();
        assert_eq!(
            blob.len() * 8,
            built.serialized_bits(),
            "{}: serialized_bits disagrees with the actual blob",
            spec.label()
        );
        let loaded = registry
            .load(&blob)
            .unwrap_or_else(|e| panic!("{} failed to load: {e}", spec.label()));
        assert_eq!(
            loaded.spec_id(),
            spec.spec_id(),
            "{}: spec id drifted",
            spec.label()
        );
        assert_bit_identical(built.as_ref(), loaded.as_ref(), &queries, spec.label());
    }
}

#[test]
fn empty_and_tiny_key_sets_roundtrip() {
    let registry = standard_registry();
    for keys in [vec![], vec![42u64], vec![0, u64::MAX]] {
        let cfg = FilterConfig::new(&keys).bits_per_key(20.0).max_range(32);
        let queries = vec![(0u64, 0u64), (0, u64::MAX), (41, 43), (u64::MAX, u64::MAX)];
        for spec in FilterSpec::ALL {
            let built = match registry.build(spec, &cfg) {
                Ok(f) => f,
                Err(_) => continue, // infeasible corner (e.g. SuRF floor)
            };
            let loaded = registry.load(&built.to_bytes()).expect("load");
            assert_bit_identical(
                built.as_ref(),
                loaded.as_ref(),
                &queries,
                &format!("{} (n={})", spec.label(), keys.len()),
            );
        }
    }
}

#[test]
fn string_grafite_roundtrips() {
    let words: Vec<String> = (0..500).map(|i| format!("key-{i:05}-suffix")).collect();
    let built = StringGrafite::new(&words, 14.0, 9).unwrap();
    let blob = built.to_bytes();
    let loaded = StringGrafite::deserialize(&blob).unwrap();
    for w in &words {
        assert_eq!(
            loaded.may_contain(w.as_bytes()),
            built.may_contain(w.as_bytes())
        );
    }
    for i in 0..1000 {
        let a = format!("key-{i:05}");
        let b = format!("key-{i:05}-zzz");
        assert_eq!(
            loaded.may_contain_range(a.as_bytes(), b.as_bytes()),
            built.may_contain_range(a.as_bytes(), b.as_bytes()),
            "string range [{a}, {b}]"
        );
    }
    assert_eq!(loaded.to_bytes(), blob);
}

#[test]
fn workload_aware_bucketing_roundtrips() {
    let keys = pseudo_keys(2000, 3);
    let sample: Vec<u64> = keys
        .iter()
        .step_by(10)
        .map(|&k| k.saturating_add(5))
        .collect();
    let built = WorkloadAwareBucketing::new(&keys, 12.0, &sample).unwrap();
    let blob = built.to_bytes();
    let loaded = WorkloadAwareBucketing::deserialize(&blob).unwrap();
    let queries = probe_queries(&keys);
    assert_bit_identical(&built, &loaded, &queries, "Bucketing-WA");
}

#[test]
fn typed_deserialize_rejects_foreign_family() {
    let keys = pseudo_keys(200, 5);
    let cfg = FilterConfig::new(&keys).bits_per_key(16.0);
    let registry = standard_registry();
    let grafite_blob = registry
        .build(FilterSpec::Grafite, &cfg)
        .unwrap()
        .to_bytes();
    // A Rosetta deserializer pointed at a Grafite blob must refuse, typed.
    assert_eq!(
        grafite_filters::Rosetta::deserialize(&grafite_blob).err(),
        Some(FilterError::SpecMismatch(spec_id::GRAFITE))
    );
    // SuRF accepts any of its three variants but not Grafite's id.
    assert_eq!(
        grafite_filters::Surf::deserialize(&grafite_blob).err(),
        Some(FilterError::SpecMismatch(spec_id::GRAFITE))
    );
}

/// The size-accounting contract: the in-memory estimate
/// (`RangeFilter::size_in_bits`) must stay honest against the measured
/// serialized footprint. Structural length words and the 40-byte header are
/// genuine per-blob overhead, so the serialized side may run slightly
/// larger; a filter whose estimate *understates* its true footprint by more
/// than the stated tolerance is lying about its space and fails here.
#[test]
fn in_memory_size_estimates_track_serialized_bits() {
    let registry = standard_registry();
    let keys = pseudo_keys(20_000, 0x517E);
    let sample: Vec<(u64, u64)> = (0..256u64).map(|i| (i << 40, (i << 40) + 31)).collect();
    let cfg = FilterConfig::new(&keys)
        .bits_per_key(18.0)
        .max_range(1 << 10)
        .sample(&sample)
        .seed(1);
    for spec in FilterSpec::ALL {
        let filter = registry.build(spec, &cfg).unwrap();
        let estimate = filter.size_in_bits() as f64;
        let measured = filter.serialized_bits() as f64;
        // Stated tolerance: within 10% of each other, plus 4096 bits of
        // absolute slack for headers/length words on small structures.
        let slack = 0.10 * measured.max(estimate) + 4096.0;
        assert!(
            (measured - estimate).abs() <= slack,
            "{}: in-memory estimate {estimate} vs serialized {measured} bits \
             drifts beyond the 10% + 4096-bit tolerance",
            spec.label()
        );
    }
}
