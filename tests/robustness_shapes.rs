//! Integration tests pinning the *qualitative* results of the paper's
//! evaluation — the claims EXPERIMENTS.md reports. These run small versions
//! of the Figure 1/3/4/5 comparisons and assert who wins, not by how much.

use grafite::{BucketingFilter, GrafiteFilter, RangeFilter};
use grafite_filters::{Rosetta, Snarf, SuffixMode, Surf};
use grafite_workloads::{correlated_queries, datasets::Dataset, generate, uncorrelated_queries};

fn fpr(filter: &dyn RangeFilter, queries: &[grafite_workloads::RangeQuery]) -> f64 {
    let fps = queries
        .iter()
        .filter(|q| filter.may_contain_range(q.lo, q.hi))
        .count();
    fps as f64 / queries.len() as f64
}

/// Figure 1/3's headline: heuristics collapse under correlation, the robust
/// filters do not, and Grafite beats Rosetta by orders of magnitude.
#[test]
fn correlation_separates_robust_from_heuristic() {
    let keys = generate(Dataset::Uniform, 30_000, 1);
    let l = 32u64;
    let correlated = correlated_queries(&keys, 10_000, l, 0.8, 7);

    let grafite = GrafiteFilter::builder()
        .bits_per_key(20.0)
        .build(&keys)
        .unwrap();
    let rosetta = Rosetta::new(&keys, 20.0, l, None, 7).unwrap();
    let snarf = Snarf::new(&keys, 20.0).unwrap();
    let surf = Surf::new(&keys, SuffixMode::Real { bits: 9 }).unwrap();
    let bucketing = BucketingFilter::builder()
        .bits_per_key(20.0)
        .build(&keys)
        .unwrap();

    let fpr_grafite = fpr(&grafite, &correlated);
    let fpr_rosetta = fpr(&rosetta, &correlated);
    let fpr_snarf = fpr(&snarf, &correlated);
    let fpr_surf = fpr(&surf, &correlated);
    let fpr_bucketing = fpr(&bucketing, &correlated);

    // Robust filters stay bounded.
    assert!(fpr_grafite <= 20e-4, "Grafite correlated FPR {fpr_grafite}");
    assert!(fpr_rosetta <= 0.2, "Rosetta correlated FPR {fpr_rosetta}");
    // Heuristics provide (almost) no filtering (paper: FPR -> 1 past D=0.4).
    assert!(fpr_snarf > 0.9, "SNARF should collapse, FPR {fpr_snarf}");
    assert!(fpr_surf > 0.9, "SuRF should collapse, FPR {fpr_surf}");
    assert!(
        fpr_bucketing > 0.9,
        "Bucketing should collapse, FPR {fpr_bucketing}"
    );
    // Grafite dominates Rosetta by at least an order of magnitude.
    assert!(
        fpr_grafite * 10.0 <= fpr_rosetta + 1e-6,
        "Grafite {fpr_grafite} not well below Rosetta {fpr_rosetta}"
    );
}

/// Figure 4's headline: on uncorrelated workloads, plain Bucketing matches
/// the sophisticated heuristics.
#[test]
fn bucketing_competitive_on_uncorrelated() {
    let keys = generate(Dataset::Uniform, 30_000, 5);
    let l = 32u64;
    let queries = uncorrelated_queries(&keys, 10_000, l, 11);

    let bucketing = BucketingFilter::builder()
        .bits_per_key(18.0)
        .build(&keys)
        .unwrap();
    let snarf = Snarf::new(&keys, 18.0).unwrap();
    let surf = Surf::new(&keys, SuffixMode::Real { bits: 7 }).unwrap();

    let fpr_bucketing = fpr(&bucketing, &queries);
    let fpr_snarf = fpr(&snarf, &queries);
    let fpr_surf = fpr(&surf, &queries);

    // "Very close to or better than the best heuristic": within a small
    // additive slack of the best.
    let best = fpr_snarf.min(fpr_surf);
    assert!(
        fpr_bucketing <= best + 0.01,
        "Bucketing {fpr_bucketing} vs best heuristic {best} (SNARF {fpr_snarf}, SuRF {fpr_surf})"
    );
}

/// Corollary 3.5's scaling: doubling the budget squares away the FPR
/// (each extra bit halves it), on every dataset.
#[test]
fn grafite_fpr_halves_per_budget_bit() {
    for dataset in [Dataset::Uniform, Dataset::Books, Dataset::Osm] {
        let keys = generate(dataset, 30_000, 9);
        let l = 1024u64;
        let queries = uncorrelated_queries(&keys, 20_000, l, 13);
        let mut prev = f64::INFINITY;
        for bpk in [12.0, 14.0, 16.0] {
            let filter = GrafiteFilter::builder()
                .bits_per_key(bpk)
                .build(&keys)
                .unwrap();
            let rate = fpr(&filter, &queries);
            let bound = filter.fpp_for_range_size(l);
            assert!(
                rate <= bound * 1.6 + 0.002,
                "{}: {rate} > bound {bound}",
                dataset.name()
            );
            assert!(
                rate <= prev,
                "{}: FPR must not grow with budget",
                dataset.name()
            );
            prev = rate;
        }
    }
}

/// The Fb case study (§6.1): at 12 bits/key on Fb-like density, Grafite is
/// (near-)exact while heuristics still err.
#[test]
fn fb_case_study_grafite_near_exact() {
    let keys = generate(Dataset::Fb, 30_000, 17);
    let l = 32u64;
    let queries = correlated_queries(&keys, 10_000, l, 0.8, 23);
    let grafite = GrafiteFilter::builder()
        .bits_per_key(12.0)
        .build(&keys)
        .unwrap();
    let rate = fpr(&grafite, &queries);
    assert!(
        rate <= 2e-3,
        "Grafite on Fb at 12 bpk should be near-exact, got {rate}"
    );
}
