//! Acceptance suite for the serving layer: the `FilterStore` round-trip
//! holds for all eleven registry specs plus StringGrafite.
//!
//! * A single-shard store answers **bit-identically** to a fresh
//!   single-filter build on the same keys — sharding is pure plumbing, it
//!   adds no approximation of its own.
//! * A multi-shard store survives `save_to` → `open` with byte-identical
//!   re-serialization and bit-identical answers, under both partitionings.
//! * An opened store keeps accepting update batches with no false
//!   negatives, and round-trips again.
//! * A damaged manifest fails with the typed `FilterError`s, never a
//!   misload.

use grafite::{
    standard_registry, FamilySpec, FilterConfig, FilterError, FilterStore, Partitioning,
    RangeFilter, Registry, StoreConfig, Update,
};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Sorted, deduplicated keys with universe edges and tight clusters.
fn dataset() -> Vec<u64> {
    let mut keys = vec![0, 1, 2, 255, 256, 257, u64::MAX - 1, u64::MAX];
    let mut state = 0xACCE_55ED;
    for _ in 0..1100 {
        keys.push(lcg(&mut state));
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Key-avoiding empty ranges for the auto-tuned families.
fn sample_queries(sorted_keys: &[u64]) -> Vec<(u64, u64)> {
    let mut sample = Vec::new();
    let mut state = 3u64;
    while sample.len() < 64 {
        let a = lcg(&mut state);
        let Some(b) = a.checked_add(31) else { continue };
        let i = sorted_keys.partition_point(|&k| k < a);
        if i < sorted_keys.len() && sorted_keys[i] <= b {
            continue;
        }
        sample.push((a, b));
    }
    sample
}

/// A mixed probe batch: key-anchored hits, near misses, far misses, edges.
fn probes(keys: &[u64]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for &k in keys.iter().step_by(3) {
        out.push((k, k));
        out.push((k.saturating_sub(7), k.saturating_add(7)));
    }
    let mut state = 0xBEEF;
    for _ in 0..800 {
        let a = lcg(&mut state);
        for width in [0u64, 1, 31, 63] {
            out.push((a, a.saturating_add(width)));
        }
    }
    out.push((0, 63));
    out.push((u64::MAX - 63, u64::MAX));
    out
}

fn store_config(family: FamilySpec, sample: Vec<(u64, u64)>, p: Partitioning) -> StoreConfig {
    StoreConfig::new(family)
        .bits_per_key(18.0)
        .max_range(64)
        .seed(13)
        .sample(sample)
        .partitioning(p)
}

/// Sharding is pure plumbing: with one shard, the store *is* the filter.
#[test]
fn single_shard_store_answers_bit_identically_to_a_fresh_filter() {
    let registry = standard_registry();
    let keys = dataset();
    let sample = sample_queries(&keys);
    let queries = probes(&keys);
    for family in FamilySpec::ALL {
        let config = store_config(family, sample.clone(), Partitioning::Range { shards: 1 });
        let store = FilterStore::build(&registry, config, &keys)
            .unwrap_or_else(|e| panic!("{}: store build failed: {e}", family.label()));
        let cfg = FilterConfig::new(&keys)
            .bits_per_key(18.0)
            .max_range(64)
            .sample(&sample)
            .seed(13);
        let fresh = family.build(&registry, &cfg).unwrap();

        let snap = store.snapshot();
        assert_eq!(snap.num_shards(), 1, "{}", family.label());
        let mut store_answers = Vec::new();
        snap.query_ranges(&queries, &mut store_answers);
        let mut fresh_answers = Vec::new();
        fresh.may_contain_ranges(&queries, &mut fresh_answers);
        assert_eq!(
            store_answers,
            fresh_answers,
            "{}: single-shard store diverged from a fresh single-filter build",
            family.label()
        );
        // The single-query path agrees too.
        for &(a, b) in queries.iter().step_by(11) {
            assert_eq!(
                snap.may_contain_range(a, b),
                fresh.may_contain_range(a, b),
                "{}: single-query path diverged on [{a}, {b}]",
                family.label()
            );
        }
    }
}

/// build → save_to → open: byte-identical manifests, bit-identical answers,
/// no false negatives — for every family under both partitionings.
#[test]
fn multi_shard_manifest_roundtrip_is_bit_identical() {
    let registry = standard_registry();
    let keys = dataset();
    let sample = sample_queries(&keys);
    let queries = probes(&keys);
    for family in FamilySpec::ALL {
        for partitioning in [
            Partitioning::Range { shards: 4 },
            Partitioning::Hash { shards: 4 },
        ] {
            let config = store_config(family, sample.clone(), partitioning);
            let store = FilterStore::build(&registry, config, &keys)
                .unwrap_or_else(|e| panic!("{}: store build failed: {e}", family.label()));
            let bytes = store.to_bytes();
            let reopened = FilterStore::open(&registry, &bytes)
                .unwrap_or_else(|e| panic!("{}: open failed: {e}", family.label()));

            assert_eq!(reopened.num_keys(), store.num_keys(), "{}", family.label());
            // Deterministic shard blobs make the whole manifest re-serialize
            // byte-identically: the strongest possible round-trip statement.
            assert_eq!(
                reopened.to_bytes(),
                bytes,
                "{}/{partitioning:?}: reopened store re-serializes differently",
                family.label()
            );
            let (snap, reopened_snap) = (store.snapshot(), reopened.snapshot());
            let (mut before, mut after) = (Vec::new(), Vec::new());
            snap.query_ranges(&queries, &mut before);
            reopened_snap.query_ranges(&queries, &mut after);
            assert_eq!(
                before,
                after,
                "{}/{partitioning:?}: answers changed across save/open",
                family.label()
            );
            for &k in keys.iter().step_by(13) {
                assert!(
                    reopened_snap.may_contain(k),
                    "{}/{partitioning:?}: reopened store lost key {k}",
                    family.label()
                );
            }
        }
    }
}

/// An opened store is a live store: update batches apply with the original
/// configuration, preserve no-false-negatives, and round-trip again.
#[test]
fn reopened_stores_keep_accepting_updates() {
    let registry = standard_registry();
    let keys = dataset();
    let sample = sample_queries(&keys);
    let inserts: Vec<u64> = {
        let mut state = 0xF00Du64;
        (0..150).map(|_| lcg(&mut state) | (1 << 63)).collect()
    };
    for family in FamilySpec::ALL {
        let config = store_config(family, sample.clone(), Partitioning::Range { shards: 4 });
        let store = FilterStore::build(&registry, config, &keys).unwrap();
        let reopened = FilterStore::open(&registry, &store.to_bytes()).unwrap();

        let batch: Vec<Update> = inserts
            .iter()
            .map(|&k| Update::Insert(k))
            .chain(keys.iter().step_by(4).map(|&k| Update::Delete(k)))
            .collect();
        let report = reopened.apply(&batch).unwrap();
        assert!(report.dirty_shards >= 1, "{}", family.label());
        let snap = reopened.snapshot();
        for &k in &inserts {
            assert!(
                snap.may_contain(k),
                "{}: inserted key {k} lost",
                family.label()
            );
        }
        for &k in keys.iter().skip(1).step_by(4) {
            assert!(
                snap.may_contain(k),
                "{}: untouched key {k} lost",
                family.label()
            );
        }
        // And the updated store round-trips too.
        let reopened_again = FilterStore::open(&registry, &reopened.to_bytes()).unwrap();
        assert_eq!(
            reopened_again.num_keys(),
            reopened.num_keys(),
            "{}",
            family.label()
        );
        for &k in inserts.iter().step_by(3) {
            assert!(reopened_again.may_contain(k), "{}", family.label());
        }
    }
}

/// Damage fails typed: flipped bits, truncation, foreign magic, version
/// skew, and a registry without the needed loader.
#[test]
fn damaged_manifests_fail_typed() {
    let registry = standard_registry();
    let keys = dataset();
    let config = store_config(
        FamilySpec::Registry(grafite::FilterSpec::Grafite),
        Vec::new(),
        Partitioning::Range { shards: 3 },
    );
    let store = FilterStore::build(&registry, config, &keys).unwrap();
    let bytes = store.to_bytes();

    // Bit rot in the body: the manifest checksum catches it before any
    // shard blob is even looked at.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    assert!(matches!(
        FilterStore::open(&registry, &corrupt),
        Err(FilterError::ChecksumMismatch { .. })
    ));

    // Truncation, in the header and in the body.
    assert!(matches!(
        FilterStore::open(&registry, &bytes[..40]),
        Err(FilterError::TruncatedBuffer { .. })
    ));
    assert!(matches!(
        FilterStore::open(&registry, &bytes[..bytes.len() - 8]),
        Err(FilterError::TruncatedBuffer { .. })
    ));

    // A filter blob is not a store manifest (distinct magics).
    let filter_blob = FamilySpec::Registry(grafite::FilterSpec::Grafite)
        .build(&registry, &FilterConfig::new(&keys))
        .unwrap()
        .to_bytes();
    assert!(matches!(
        FilterStore::open(&registry, &filter_blob),
        Err(FilterError::BadMagic(_))
    ));

    // Version skew fails before anything else is interpreted.
    let mut skewed = bytes.clone();
    skewed[12] = 9; // low byte of the version half of word 1
    assert!(matches!(
        FilterStore::open(&registry, &skewed),
        Err(FilterError::UnsupportedFormatVersion { found: 9, .. })
    ));

    // A registry that cannot load the family reports it.
    assert!(matches!(
        FilterStore::open(&Registry::empty(), &bytes),
        Err(FilterError::Unregistered(_))
    ));
}
