//! Workspace smoke test: every filter the bench registry can build answers
//! point and range queries with **zero false negatives** on a small key set
//! that deliberately includes universe edges, duplicates, and tight
//! clusters. Complements `crates/bench/tests/registry_smoke.rs`, which
//! checks the same specs through the measurement harness on synthetic
//! datasets; this test probes the filters directly through the meta-crate.
//!
//! Uses the `FilterConfig`/`build_spec` registry path, the workspace-wide
//! construction contract; `tests/buildable_conformance.rs` covers the
//! typed per-filter protocol.

use grafite_bench::registry::{build_spec, FilterConfig, FilterSpec};

const ALL_SPECS: [FilterSpec; 11] = [
    FilterSpec::Grafite,
    FilterSpec::Bucketing,
    FilterSpec::Snarf,
    FilterSpec::SurfReal,
    FilterSpec::SurfHash,
    FilterSpec::Proteus,
    FilterSpec::Rosetta,
    FilterSpec::REncoder,
    FilterSpec::REncoderSS,
    FilterSpec::REncoderSE,
    FilterSpec::TrivialBloom,
];

/// A small key set stressing the shapes that flush out edge-case bugs:
/// universe boundaries, adjacent runs, powers of two, duplicates, and a
/// pseudo-random spread.
fn smoke_keys() -> Vec<u64> {
    let mut keys = vec![
        0,
        1,
        2,
        7,
        8,
        9,
        255,
        256,
        257,
        (1 << 20) - 1,
        1 << 20,
        (1 << 20) + 1,
        u64::MAX - 2,
        u64::MAX - 1,
        u64::MAX,
        42,
        42, // duplicate
    ];
    let mut state = 0xD1CEu64;
    for _ in 0..200 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        keys.push(state);
    }
    keys
}

fn sample_queries(sorted: &[u64]) -> Vec<(u64, u64)> {
    // Empty ranges for the auto-tuned filters' samples.
    let mut sample = Vec::new();
    let mut state = 3u64;
    while sample.len() < 64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let a = state;
        let b = match a.checked_add(31) {
            Some(b) => b,
            None => continue,
        };
        let i = sorted.partition_point(|&k| k < a);
        if i < sorted.len() && sorted[i] <= b {
            continue;
        }
        sample.push((a, b));
    }
    sample
}

#[test]
fn every_registry_spec_has_no_false_negatives() {
    let keys = smoke_keys();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let sample = sample_queries(&sorted);

    for budget in [12.0, 20.0] {
        let cfg = FilterConfig::new(&keys)
            .bits_per_key(budget)
            .max_range(64)
            .sample(&sample)
            .seed(13);
        for spec in ALL_SPECS {
            let Some(filter) = build_spec(spec, &cfg) else {
                panic!("{} infeasible at {budget} bits/key", spec.label());
            };
            assert_eq!(filter.num_keys(), keys.len(), "{}", spec.label());
            for &k in &keys {
                assert!(
                    filter.may_contain(k),
                    "{} at {budget} bpk: point false negative on {k}",
                    spec.label()
                );
                for width in [0u64, 1, 3, 63] {
                    let a = k.saturating_sub(width);
                    let b = k.saturating_add(width);
                    assert!(
                        filter.may_contain_range(a, b),
                        "{} at {budget} bpk: range false negative on [{a}, {b}] around {k}",
                        spec.label()
                    );
                }
            }
        }
    }
}

#[test]
fn every_registry_spec_accepts_single_key_and_handles_empty() {
    let sample = [(100u64, 131u64)];
    let single = [777u64];
    for spec in ALL_SPECS {
        // Single key.
        let cfg = FilterConfig::new(&single)
            .max_range(64)
            .sample(&sample)
            .seed(1);
        let filter = build_spec(spec, &cfg)
            .unwrap_or_else(|| panic!("{} infeasible on a single key", spec.label()));
        assert!(filter.may_contain(777), "{}", spec.label());
        assert!(filter.may_contain_range(700, 800), "{}", spec.label());

        // Empty key set: must build and answer "empty" everywhere.
        let cfg = FilterConfig::new(&[][..])
            .max_range(64)
            .sample(&sample)
            .seed(1);
        let filter = build_spec(spec, &cfg)
            .unwrap_or_else(|| panic!("{} infeasible on an empty key set", spec.label()));
        assert!(
            !filter.may_contain_range(0, u64::MAX),
            "{} claims a key in an empty set",
            spec.label()
        );
    }
}
